"""The JSONL imputation journal: checkpoint/resume for RENUVER runs.

A journaled run appends one JSON record per processed cell as it goes,
flushing after every record, so a run killed at any point leaves a
replayable prefix on disk.  ``Renuver.impute(resume_from=...)`` replays
that prefix onto a fresh copy of the *same* dirty relation — restoring
every filled value and skipping every settled cell — and continues
exactly where the run died.  Because the algorithm is deterministic, the
resumed run converges on a relation bit-identical to an uninterrupted
one.

Record types (one JSON object per line):

``header``
    Written once when the journal file is created: schema (attribute
    names), tuple count, missing-cell count and a SHA-256 fingerprint
    of the dirty relation.  Resume refuses to replay onto a relation
    with a different schema or fingerprint.  Journals written before
    the SHA-256 switch carry an MD5 fingerprint (32 hex chars); replay
    still accepts those by digest length.
``cell``
    One terminal :class:`~repro.core.report.CellOutcome`: coordinates,
    status, value, source row, RFD (re-parseable text), distance,
    engine tier, candidates tried and rollback count.  Cells settled by
    the supervised runtime additionally carry a ``worker`` tag naming
    the batch that computed them (``None`` for in-process recomputes).
``budget``
    A :class:`~repro.core.report.BudgetEvent` (run- or cell-scope).
``degradation``
    A :class:`~repro.core.report.Degradation` (audit only; replay
    ignores it).
``reactivation``
    Key RFDs re-activated by a fill (Algorithm 1 line 14).  Written by
    supervised workers into their shards so the round barrier can
    compare worker-local reactivations against the authoritative ones;
    replay ignores it.
``end``
    The run finished normally.  Absent after a crash — which is fine:
    replay only needs the prefix.

Worker shards
-------------
The supervised runtime's worker subprocesses journal their batch into
per-attempt *shard* files (``<journal>.shards/r<round>.b<batch>.a<n>``)
using the same record vocabulary, minus the header.  The supervisor
merges settled shards into the main journal at the round barrier — the
main journal therefore stays an ordered, replayable, crash-safe prefix
even when the cells were computed out-of-order across processes.
:func:`read_shard` parses one shard back into per-cell results.

A truncated final line (the record being written when the process died)
is tolerated and *counted*: replay drops the torn tail with a warning
and, when a telemetry spine is attached, increments
``renuver_journal_torn_records_total``.  Corruption anywhere else raises
:class:`~repro.exceptions.JournalError`.  Appends that fail at the OS
level (e.g. a full disk) surface as a :class:`JournalError` naming the
journal path rather than leaking a raw ``OSError``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, TextIO

from dataclasses import dataclass, field

from repro.core.report import (
    BudgetEvent,
    CellOutcome,
    Degradation,
    OutcomeStatus,
)
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.exceptions import JournalError
from repro.rfd.parser import parse_rfd
from repro.rfd.rfd import RFD
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger
from repro.utils.atomic import check_disk_fault

# Relation fingerprinting moved to repro.utils.fingerprint so the
# service's artifact cache shares it; re-exported here for backward
# compatibility (several callers import it from the journal).
from repro.utils.fingerprint import (  # noqa: F401 - re-export
    fingerprint_matches,
    relation_fingerprint,
)

logger = get_logger("robustness.journal")

JOURNAL_VERSION = 1


def cell_record(
    outcome: CellOutcome, *, worker: str | None = None
) -> dict[str, Any]:
    """The JSON journal record for one settled cell.

    The inverse of :func:`outcome_from_record`; shared by
    :meth:`JournalWriter.record_cell` and the pipeline's carried-forward
    unresolved-cell ledger, so every persisted cell outcome uses one
    vocabulary.
    """
    rollbacks = outcome.candidates_tried - (1 if outcome.filled else 0)
    record: dict[str, Any] = {
        "type": "cell",
        "row": outcome.row,
        "attribute": outcome.attribute,
        "status": outcome.status.value,
        "value": None if is_missing(outcome.value) else outcome.value,
        "source_row": outcome.source_row,
        "rfd": str(outcome.rfd) if outcome.rfd is not None else None,
        "distance": outcome.distance,
        "cluster_threshold": outcome.cluster_threshold,
        "candidates_tried": outcome.candidates_tried,
        "rollbacks": max(0, rollbacks),
        "engine_tier": outcome.engine_tier,
        "reason": outcome.reason,
    }
    if worker is not None:
        record["worker"] = worker
    return record


class JournalWriter:
    """Append-only JSONL journal, flushed after every record.

    ``fsync=True`` additionally syncs each record to stable storage
    (survives OS crashes, not just process death) at a per-cell cost.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._handle: TextIO | None = self.path.open(
            "a", encoding="utf-8", newline=""
        )
        self._fresh = self.path.stat().st_size == 0

    def write_header(self, relation: Relation, *, engine: str) -> None:
        """Record the run's identity; skipped when resuming an existing
        journal (the original header stands)."""
        if not self._fresh:
            return
        self._write({
            "type": "header",
            "version": JOURNAL_VERSION,
            "relation": relation.name,
            "n_tuples": relation.n_tuples,
            "n_attributes": relation.n_attributes,
            "attributes": list(relation.attribute_names),
            "missing": relation.count_missing(),
            "fingerprint": relation_fingerprint(relation),
            "engine": engine,
        })
        self._fresh = False
        logger.info(
            "journaling run on %s (%d tuples) to %s",
            relation.name, relation.n_tuples, self.path,
        )

    def record_cell(
        self, outcome: CellOutcome, *, worker: str | None = None
    ) -> None:
        """Journal one settled cell.

        ``worker`` attributes the outcome to the supervised batch that
        computed it (e.g. ``"r2.b1"``); omitted for sequential runs and
        for cells the supervisor recomputed in-process.
        """
        self._write(cell_record(outcome, worker=worker))

    def record_degradation(
        self, degradation: Degradation, *, worker: str | None = None
    ) -> None:
        """Journal one degradation-ladder downgrade (audit only)."""
        record = {
            "type": "degradation",
            "row": degradation.row,
            "attribute": degradation.attribute,
            "from_tier": degradation.from_tier,
            "to_tier": degradation.to_tier,
            "reason": degradation.reason,
        }
        if worker is not None:
            record["worker"] = worker
        self._write(record)

    def record_reactivation(
        self, row: int, attribute: str, rfds: list[str]
    ) -> None:
        """Journal key RFDs re-activated by the fill at one cell."""
        self._write({
            "type": "reactivation",
            "row": row,
            "attribute": attribute,
            "rfds": rfds,
        })

    def record_budget(self, event: BudgetEvent) -> None:
        """Journal a budget trip (kept for the audit trail; replay
        ignores it)."""
        self._write({
            "type": "budget",
            "scope": event.scope,
            "kind": event.kind,
            "context": event.context,
            "elapsed_seconds": event.elapsed_seconds,
            "peak_bytes": event.peak_bytes,
            "row": event.row,
            "attribute": event.attribute,
        })

    def record_end(self) -> None:
        """Mark the run complete."""
        self._write({"type": "end"})

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        try:
            check_disk_fault(self.path)
            self._handle.write(
                json.dumps(record, ensure_ascii=False) + "\n"
            )
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            # Locate the failure (full disk, yanked volume) instead of
            # leaking a raw OSError from deep inside a run.
            raise JournalError(
                f"cannot append {record.get('type', '?')!r} record to "
                f"journal {self.path}: {exc}"
            ) from exc


_TORN_RECORDS = "renuver_journal_torn_records_total"
_HELP_TORN = (
    "Torn trailing journal records dropped during parse/replay."
)


def _drop_torn_tail(
    path: Path, number: int, detail: str, telemetry: Telemetry
) -> None:
    """Count and warn about a torn final record, then carry on.

    A crash mid-append leaves the record being written as a truncated
    (or otherwise non-record) final line.  Replay only needs the
    complete prefix, so the tail is dropped — but never silently: the
    skip is logged and counted so operators can tell a crashed run's
    journal from a pristine one.
    """
    telemetry.metrics.counter(_TORN_RECORDS, _HELP_TORN).inc()
    logger.warning(
        "journal %s: dropping torn trailing record at line %d (%s) — "
        "crash mid-append; replaying the complete prefix",
        path, number, detail,
    )


def _parse_records(
    path: Path, *, telemetry: Telemetry = NULL_TELEMETRY
) -> list[dict[str, Any]]:
    """JSONL records of ``path``, tolerating a truncated last line.

    The torn tail a crash mid-append leaves behind — a final line that
    does not parse, or parses to something that is not a journal
    record — is skipped with a counted warning.  Corruption anywhere
    but the final line raises :class:`JournalError`.
    """
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: list[dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if number == len(lines):
                _drop_torn_tail(path, number, str(exc), telemetry)
                break  # the record being written when the run died
            raise JournalError(
                f"journal {path} line {number} is corrupt: {exc}"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            if number == len(lines):
                _drop_torn_tail(
                    path, number, "not a journal record", telemetry
                )
                break
            raise JournalError(
                f"journal {path} line {number} is not a journal record"
            )
        records.append(record)
    return records


def load_journal(
    path: str | Path, *, telemetry: Telemetry = NULL_TELEMETRY
) -> list[dict[str, Any]]:
    """Parse a journal into records, tolerating a truncated last line."""
    path = Path(path)
    records = _parse_records(path, telemetry=telemetry)
    if not records or records[0].get("type") != "header":
        raise JournalError(f"journal {path} has no header record")
    return records


@dataclass
class WorkerCellResult:
    """One cell as settled by a supervised worker batch (shard replay)."""

    outcome: CellOutcome
    degradations: list[Degradation] = field(default_factory=list)
    budget_events: list[BudgetEvent] = field(default_factory=list)
    #: ``str(rfd)`` of key RFDs the worker re-activated after this fill.
    reactivated: list[str] = field(default_factory=list)


def read_shard(
    path: str | Path, *, telemetry: Telemetry = NULL_TELEMETRY
) -> list[WorkerCellResult]:
    """Parse a worker journal shard into per-cell results, in order.

    Shards carry no header; a truncated tail (the worker died or was
    killed mid-record) is tolerated — the supervisor retries the batch,
    so a partial shard is never replayed as complete.  Degradation and
    budget records are attached to the *following* cell record (workers
    write them while the cell is being settled); reactivation records
    attach to the preceding cell.
    """
    results: list[WorkerCellResult] = []
    pending_degradations: list[Degradation] = []
    pending_budget: list[BudgetEvent] = []
    for record in _parse_records(Path(path), telemetry=telemetry):
        kind = record.get("type")
        if kind == "cell":
            results.append(WorkerCellResult(
                outcome=outcome_from_record(record),
                degradations=pending_degradations,
                budget_events=pending_budget,
            ))
            pending_degradations, pending_budget = [], []
        elif kind == "degradation":
            pending_degradations.append(Degradation(
                record["row"], record["attribute"],
                record.get("from_tier", ""), record.get("to_tier", ""),
                record.get("reason", ""),
            ))
        elif kind == "budget":
            pending_budget.append(BudgetEvent(
                scope=record.get("scope", "cell"),
                kind=record.get("kind", "time"),
                context=record.get("context", ""),
                elapsed_seconds=record.get("elapsed_seconds"),
                peak_bytes=record.get("peak_bytes"),
                row=record.get("row"),
                attribute=record.get("attribute"),
            ))
        elif kind == "reactivation" and results:
            results[-1].reactivated = list(record.get("rfds", ()))
    return results


def replay_journal(
    path: str | Path,
    relation: Relation,
    *,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> list[CellOutcome]:
    """Replay a journal onto ``relation`` (mutating it in place).

    Verifies the header against ``relation`` — schema first (tuple and
    attribute counts, attribute names), with a located
    :class:`~repro.exceptions.JournalError` naming the mismatching
    field, then the fingerprint (the caller must pass the same dirty
    instance the journaled run started from).  On success re-applies
    every filled value and returns the replayed outcomes in journal
    order.  Cells the journal settled without a fill (skipped, no
    candidates, ...) are returned too so the driver knows not to retry
    them.
    """
    records = load_journal(path, telemetry=telemetry)
    header = records[0]
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} has version {header.get('version')!r}, "
            f"expected {JOURNAL_VERSION}"
        )
    schema_checks = (
        ("n_tuples", relation.n_tuples),
        ("n_attributes", relation.n_attributes),
        ("attributes", list(relation.attribute_names)),
    )
    for name, actual in schema_checks:
        expected = header.get(name)
        if expected is not None and expected != actual:
            raise JournalError(
                f"journal {path} header mismatch: {name} is "
                f"{expected!r} but relation {relation.name!r} has "
                f"{actual!r}"
            )
    expected = header.get("fingerprint")
    if not fingerprint_matches(expected, relation):
        raise JournalError(
            f"journal {path} was written for a different relation "
            f"(fingerprint {expected} != "
            f"{relation_fingerprint(relation)}); resume must start "
            f"from the same dirty instance"
        )
    outcomes: list[CellOutcome] = []
    seen: set[tuple[int, str]] = set()
    for record in records[1:]:
        if record["type"] != "cell":
            continue
        row, attribute = record["row"], record["attribute"]
        if (row, attribute) in seen:
            raise JournalError(
                f"journal {path} settles cell ({row}, {attribute}) twice"
            )
        seen.add((row, attribute))
        outcome = outcome_from_record(record)
        if outcome.filled:
            relation.set_value(row, attribute, outcome.value)
        outcomes.append(outcome)
    logger.info(
        "replayed %d settled cells from %s", len(outcomes), path
    )
    return outcomes


def outcome_from_record(record: dict[str, Any]) -> CellOutcome:
    """Restore a :class:`CellOutcome` from its journal ``cell`` record.

    The inverse of :func:`cell_record`.  Unknown statuses raise
    :class:`~repro.exceptions.JournalError`; an unparseable RFD is
    dropped (it is provenance, not state).
    """
    try:
        status = OutcomeStatus(record["status"])
    except ValueError as exc:
        raise JournalError(
            f"unknown cell status {record['status']!r} in journal"
        ) from exc
    rfd: RFD | None = None
    if record.get("rfd"):
        try:
            rfd = parse_rfd(record["rfd"])
        except Exception:  # noqa: BLE001 - provenance only, not fatal
            rfd = None
    return CellOutcome(
        record["row"],
        record["attribute"],
        status,
        value=record.get("value"),
        source_row=record.get("source_row"),
        rfd=rfd,
        distance=record.get("distance"),
        cluster_threshold=record.get("cluster_threshold"),
        candidates_tried=record.get("candidates_tried", 0),
        engine_tier=record.get("engine_tier"),
        reason=record.get("reason"),
    )
