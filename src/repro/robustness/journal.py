"""The JSONL imputation journal: checkpoint/resume for RENUVER runs.

A journaled run appends one JSON record per processed cell as it goes,
flushing after every record, so a run killed at any point leaves a
replayable prefix on disk.  ``Renuver.impute(resume_from=...)`` replays
that prefix onto a fresh copy of the *same* dirty relation — restoring
every filled value and skipping every settled cell — and continues
exactly where the run died.  Because the algorithm is deterministic, the
resumed run converges on a relation bit-identical to an uninterrupted
one.

Record types (one JSON object per line):

``header``
    Written once when the journal file is created: schema, tuple count,
    missing-cell count and an MD5 fingerprint of the dirty relation.
    Resume refuses to replay onto a relation with a different
    fingerprint.
``cell``
    One terminal :class:`~repro.core.report.CellOutcome`: coordinates,
    status, value, source row, RFD (re-parseable text), distance,
    engine tier, candidates tried and rollback count.
``budget``
    A :class:`~repro.core.report.BudgetEvent` (run- or cell-scope).
``end``
    The run finished normally.  Absent after a crash — which is fine:
    replay only needs the prefix.

A truncated final line (the record being written when the process died)
is tolerated and ignored; corruption anywhere else raises
:class:`~repro.exceptions.JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, TextIO

from repro.core.report import BudgetEvent, CellOutcome, OutcomeStatus
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.exceptions import JournalError
from repro.rfd.parser import parse_rfd
from repro.rfd.rfd import RFD
from repro.telemetry.logs import get_logger

logger = get_logger("robustness.journal")

JOURNAL_VERSION = 1


def relation_fingerprint(relation: Relation) -> str:
    """MD5 over schema and cells — identifies the dirty instance.

    Computed over the same rendering `to_csv_text` produces, so the
    fingerprint is stable across copies and process restarts.
    """
    from repro.dataset.csv_io import to_csv_text

    digest = hashlib.md5()
    digest.update(to_csv_text(relation).encode("utf-8"))
    return digest.hexdigest()


class JournalWriter:
    """Append-only JSONL journal, flushed after every record.

    ``fsync=True`` additionally syncs each record to stable storage
    (survives OS crashes, not just process death) at a per-cell cost.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._handle: TextIO | None = self.path.open(
            "a", encoding="utf-8", newline=""
        )
        self._fresh = self.path.stat().st_size == 0

    def write_header(self, relation: Relation, *, engine: str) -> None:
        """Record the run's identity; skipped when resuming an existing
        journal (the original header stands)."""
        if not self._fresh:
            return
        self._write({
            "type": "header",
            "version": JOURNAL_VERSION,
            "relation": relation.name,
            "n_tuples": relation.n_tuples,
            "n_attributes": relation.n_attributes,
            "missing": relation.count_missing(),
            "fingerprint": relation_fingerprint(relation),
            "engine": engine,
        })
        self._fresh = False
        logger.info(
            "journaling run on %s (%d tuples) to %s",
            relation.name, relation.n_tuples, self.path,
        )

    def record_cell(self, outcome: CellOutcome) -> None:
        """Journal one settled cell."""
        rollbacks = outcome.candidates_tried - (1 if outcome.filled else 0)
        self._write({
            "type": "cell",
            "row": outcome.row,
            "attribute": outcome.attribute,
            "status": outcome.status.value,
            "value": None if is_missing(outcome.value) else outcome.value,
            "source_row": outcome.source_row,
            "rfd": str(outcome.rfd) if outcome.rfd is not None else None,
            "distance": outcome.distance,
            "cluster_threshold": outcome.cluster_threshold,
            "candidates_tried": outcome.candidates_tried,
            "rollbacks": max(0, rollbacks),
            "engine_tier": outcome.engine_tier,
            "reason": outcome.reason,
        })

    def record_budget(self, event: BudgetEvent) -> None:
        """Journal a budget trip (kept for the audit trail; replay
        ignores it)."""
        self._write({
            "type": "budget",
            "scope": event.scope,
            "kind": event.kind,
            "context": event.context,
            "elapsed_seconds": event.elapsed_seconds,
            "peak_bytes": event.peak_bytes,
            "row": event.row,
            "attribute": event.attribute,
        })

    def record_end(self) -> None:
        """Mark the run complete."""
        self._write({"type": "end"})

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())


def load_journal(path: str | Path) -> list[dict[str, Any]]:
    """Parse a journal into records, tolerating a truncated last line."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: list[dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break  # the record being written when the run died
            raise JournalError(
                f"journal {path} line {number} is corrupt: {exc}"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            raise JournalError(
                f"journal {path} line {number} is not a journal record"
            )
        records.append(record)
    if not records or records[0].get("type") != "header":
        raise JournalError(f"journal {path} has no header record")
    return records


def replay_journal(
    path: str | Path, relation: Relation
) -> list[CellOutcome]:
    """Replay a journal onto ``relation`` (mutating it in place).

    Verifies the header fingerprint against ``relation`` — the caller
    must pass the same dirty instance the journaled run started from —
    then re-applies every filled value and returns the replayed
    outcomes in journal order.  Cells the journal settled without a fill
    (skipped, no candidates, ...) are returned too so the driver knows
    not to retry them.
    """
    records = load_journal(path)
    header = records[0]
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} has version {header.get('version')!r}, "
            f"expected {JOURNAL_VERSION}"
        )
    expected = header.get("fingerprint")
    actual = relation_fingerprint(relation)
    if expected != actual:
        raise JournalError(
            f"journal {path} was written for a different relation "
            f"(fingerprint {expected} != {actual}); resume must start "
            f"from the same dirty instance"
        )
    outcomes: list[CellOutcome] = []
    seen: set[tuple[int, str]] = set()
    for record in records[1:]:
        if record["type"] != "cell":
            continue
        row, attribute = record["row"], record["attribute"]
        if (row, attribute) in seen:
            raise JournalError(
                f"journal {path} settles cell ({row}, {attribute}) twice"
            )
        seen.add((row, attribute))
        outcome = _outcome_from_record(record)
        if outcome.filled:
            relation.set_value(row, attribute, outcome.value)
        outcomes.append(outcome)
    logger.info(
        "replayed %d settled cells from %s", len(outcomes), path
    )
    return outcomes


def _outcome_from_record(record: dict[str, Any]) -> CellOutcome:
    try:
        status = OutcomeStatus(record["status"])
    except ValueError as exc:
        raise JournalError(
            f"unknown cell status {record['status']!r} in journal"
        ) from exc
    rfd: RFD | None = None
    if record.get("rfd"):
        try:
            rfd = parse_rfd(record["rfd"])
        except Exception:  # noqa: BLE001 - provenance only, not fatal
            rfd = None
    return CellOutcome(
        record["row"],
        record["attribute"],
        status,
        value=record.get("value"),
        source_row=record.get("source_row"),
        rfd=rfd,
        distance=record.get("distance"),
        cluster_threshold=record.get("cluster_threshold"),
        candidates_tried=record.get("candidates_tried", 0),
        engine_tier=record.get("engine_tier"),
        reason=record.get("reason"),
    )
