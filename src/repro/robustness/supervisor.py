"""Supervised parallel imputation: crash-isolated workers, exact merge.

``RenuverConfig(workers=N)`` with ``N > 1`` routes the imputation loop
through :class:`Supervisor` instead of the sequential cell loop.  Each
*round* takes the next ``workers * worker_batch_size`` unsettled cells
(in the sequential cell order), freezes a snapshot of the relation,
ships contiguous batches to worker subprocesses, and merges the results
back at a deterministic round barrier.

Determinism by construction
---------------------------
The sequential engine is single-pass with immediate fill visibility:
cell *k*'s outcome may depend on every fill and key-RFD re-activation
produced by cells ``0..k-1``.  Workers only see the round snapshot plus
their *own* batch's earlier fills (they replicate the sequential loop
locally, including key re-activation).  The merge therefore replays the
global sequential order and accepts a worker outcome **only when a
conservative footprint argument proves the worker saw everything that
could have affected it**:

* a cell is invalidated when a *foreign* batch (or an in-process
  recompute) filled any attribute in the cell's footprint —
  ``footprint[A] = {A} ∪ attrs(φ)`` for every RFD φ containing ``A``,
  which covers candidate generation (RHS = A), verification (A on a
  LHS) and key re-activation; under ``keyness_scope="complete"`` the
  footprint widens to all attributes (tuple completeness sees every
  column);
* a batch *diverges* when an authoritative merge result differs from
  what its worker computed (different fill, or different key
  re-activations) — every later cell of that batch is invalidated;
* any authoritative re-activation invalidates the remaining cells of
  every *other* batch (their workers ran against the old RFD split).

Invalidated cells are recomputed in-process against the live relation —
which is, by definition, the sequential result.  By induction over the
merge order the final relation and every
:class:`~repro.core.report.CellOutcome` are bit-identical to a
``workers=1`` run.  ``workers=1`` itself *is* the sequential path; the
supervisor only engages at two or more workers.

Failure containment
-------------------
The supervisor owns worker robustness: heartbeats (per cell, plus a
throttled in-cell pulse through the engines' kernel-call seam),
wall-clock timeouts, crash detection (exit code / signal / incomplete
shard), bounded retry with exponential backoff + jitter (timing only —
never outcomes), and a terminal degradation that recomputes a poisoned
batch in-process on the scalar reference engine, audited via
``ImputationReport.degradations``.  Only a pool that cannot even spawn
workers raises :class:`~repro.exceptions.WorkerPoolError` (CLI exit
code 7).  See ``docs/ROBUSTNESS.md`` for the failure taxonomy.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from queue import Empty
from typing import TYPE_CHECKING, Any, Sequence

from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.exceptions import DataError, WorkerPoolError
from repro.robustness.journal import (
    JournalWriter,
    WorkerCellResult,
    read_shard,
)
from repro.rfd.rfd import RFD
from repro.telemetry.logs import get_logger
from repro.utils.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.renuver import Renuver, RenuverConfig, _RunState

logger = get_logger("robustness.supervisor")

#: Seconds between in-cell heartbeat pulses through the kernel seam.
HEARTBEAT_SECONDS = 0.2
#: Grace period for a worker that exited 0 before its shard is judged.
EXIT_GRACE_SECONDS = 1.0


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class _BatchPayload:
    """Everything a worker subprocess needs — plain picklable data."""

    snapshot: Relation
    rfds: tuple[RFD, ...]
    config: "RenuverConfig"
    active_rfds: list[RFD]
    key_rfds: list[RFD]
    cells: list[tuple[int, str]]
    shard_path: str
    batch_key: str
    attempt: int
    fault: dict[str, Any] | None
    distance_overrides: dict[str, Any]


def _worker_main(payload: _BatchPayload, queue: Any) -> None:
    """Entry point of one worker subprocess: impute one batch.

    Replicates the sequential loop over the batch's cells against the
    shipped snapshot — fills become visible to later cells of the same
    batch, and key RFDs re-activate locally — journaling every settled
    cell (plus its degradations, budget trips and re-activations) into
    the shard, and heartbeating through ``queue``.  The chaos fault
    plan, when present, is applied here: a *kill* SIGKILLs the process
    mid-batch, a *hang* stops heartbeating forever, a *slow* worker
    sleeps before every cell but keeps heartbeating.
    """
    # The supervisor owns shutdown: Ctrl-C must reach the parent, which
    # then reaps workers deliberately instead of racing their deaths.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.core.renuver import Renuver, _RunState
    from repro.core.report import ImputationReport
    from repro.exceptions import BudgetExceededError
    from repro.utils.timer import Timer

    fault = payload.fault or {}
    renuver = Renuver(
        payload.rfds,
        payload.config,
        distance_overrides=payload.distance_overrides,
    )
    relation = payload.snapshot
    calculator = renuver._make_calculator(relation)
    engine = renuver._make_engine(calculator)
    # The shipped config carries the request's *remaining* budget (the
    # supervisor computed it at dispatch), so the worker cancels itself
    # at the same deadline the parent enforces.
    timer = Timer(payload.config.time_budget_seconds)
    timer.start()
    state = _RunState(
        calculator=calculator,
        engine=engine,
        active_rfds=list(payload.active_rfds),
        key_rfds=list(payload.key_rfds),
        report=ImputationReport(),
        timer=timer,
    )
    last_pulse = [time.monotonic()]

    def pulse(op: str, row: int, attribute: str) -> None:
        now = time.monotonic()
        if now - last_pulse[0] >= HEARTBEAT_SECONDS:
            last_pulse[0] = now
            queue.put(("hb", payload.batch_key, payload.attempt, -1))
            # Deadline check at the kernel seam, throttled with the
            # heartbeat: an expired budget cancels the work inside the
            # kernel loop, not only between cells.
            timer.check_budget("supervised worker")

    engine.add_kernel_hook(pulse)
    writer = JournalWriter(payload.shard_path)
    try:
        for index, (row, attribute) in enumerate(payload.cells):
            kind = fault.get("kind")
            if kind in ("kill", "hang") and index >= fault["after_cells"]:
                writer.close()
                if kind == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                while True:  # hang: alive but silent until reaped
                    time.sleep(3600)
            queue.put(("hb", payload.batch_key, payload.attempt, index))
            timer.check_budget("supervised worker")
            if kind == "slow":
                time.sleep(fault["seconds"])
            seen_degradations = len(state.report.degradations)
            seen_budget = len(state.report.budget_events)
            outcome = renuver._impute_cell_guarded(state, row, attribute)
            for degradation in state.report.degradations[seen_degradations:]:
                writer.record_degradation(degradation)
            for event in state.report.budget_events[seen_budget:]:
                writer.record_budget(event)
            writer.record_cell(outcome)
            if outcome.filled and payload.config.recheck_keys:
                before = len(state.active_rfds)
                renuver._reactivate_keys(state, row, attribute)
                reactivated = [
                    str(rfd) for rfd in state.active_rfds[before:]
                ]
                if reactivated:
                    writer.record_reactivation(row, attribute, reactivated)
        queue.put(("done", payload.batch_key, payload.attempt))
    except BudgetExceededError:
        # Deadline hit inside the batch: stop where the work runs and
        # exit without a "done" — the parent's own deadline check fires
        # on its next loop tick and settles the run as partial.
        pass
    finally:
        writer.close()
        engine.close()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class _Batch:
    """One contiguous slice of a round's cells and its dispatch state."""

    index: int
    key: str
    cells: list[tuple[int, str]]
    attempt: int = 0
    process: Any = None
    shard_path: Path | None = None
    started_at: float = 0.0
    last_heartbeat: float = 0.0
    next_spawn_at: float = 0.0
    done_at: float | None = None
    results: list[WorkerCellResult] | None = None
    poisoned: bool = False
    poison_reason: str = ""
    attempts_used: int = 0

    @property
    def settled(self) -> bool:
        return self.results is not None or self.poisoned


class Supervisor:
    """Drives one supervised run on behalf of a :class:`Renuver`.

    Built by the driver's imputation loop when ``config.workers > 1``;
    owns worker processes, the heartbeat queue, shard files and the
    round-barrier merge.  All mutations of the live relation and the
    report go through the same helpers the sequential path uses.
    """

    def __init__(self, renuver: "Renuver", state: "_RunState") -> None:
        self.renuver = renuver
        self.state = state
        self.config = renuver.config
        self.telemetry = renuver.telemetry
        self._ctx = get_context()
        self._queue = self._ctx.Queue()
        self._jitter_rng = spawn_rng(0, "supervisor", "backoff")
        writer = state.writer
        if writer is not None:
            self._shard_dir = Path(str(writer.path) + ".shards")
        else:
            self._shard_dir = Path(tempfile.mkdtemp(prefix="renuver-shards-"))
        self._shard_dir.mkdir(parents=True, exist_ok=True)
        self._live: list[_Batch] = []

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[tuple[int, str]]) -> None:
        """Impute ``cells`` (global sequential order) round by round."""
        config = self.config
        state = self.state
        round_size = config.workers * config.worker_batch_size
        round_index = 0
        position = 0
        try:
            while position < len(cells):
                round_cells = list(cells[position:position + round_size])
                with self.telemetry.tracer.span(
                    "supervisor.round",
                    round=round_index,
                    cells=len(round_cells),
                ) as span:
                    batches = self._run_round(round_index, round_cells)
                    span.set_attribute("batches", len(batches))
                    span.set_attribute(
                        "poisoned",
                        sum(1 for batch in batches if batch.poisoned),
                    )
                position += len(round_cells)
                round_index += 1
                state.report.supervisor_rounds = round_index
        finally:
            self._reap_all()
            # Shards are merge inputs, not checkpoints: once a round is
            # merged (or abandoned) they are dead weight — resume only
            # needs the main journal.
            shutil.rmtree(self._shard_dir, ignore_errors=True)
        logger.info(
            "supervised run: %d rounds, %d batches (%d accepted, "
            "%d recomputed, %d retries, %d crashes)",
            state.report.supervisor_rounds, state.report.worker_batches,
            state.report.worker_cells_accepted,
            state.report.worker_cells_recomputed,
            state.report.worker_retries, state.report.worker_crashes,
        )

    # ------------------------------------------------------------------
    def _run_round(
        self, round_index: int, round_cells: list[tuple[int, str]]
    ) -> list[_Batch]:
        """Dispatch one round's batches, wait at the barrier, merge."""
        config = self.config
        snapshot = self.state.calculator.relation.copy()
        batches = []
        for index in range(0, len(round_cells), config.worker_batch_size):
            batch_index = index // config.worker_batch_size
            batches.append(_Batch(
                index=batch_index,
                key=f"r{round_index}.b{batch_index}",
                cells=round_cells[index:index + config.worker_batch_size],
            ))
        self.state.report.worker_batches += len(batches)
        try:
            self._drive_batches(round_index, snapshot, batches)
        finally:
            self._reap_all()
        self._merge_round(batches)
        return batches

    def _drive_batches(
        self,
        round_index: int,
        snapshot: Relation,
        batches: list[_Batch],
    ) -> None:
        """The dispatch event loop: spawn, heartbeat, detect, retry."""
        self._live = batches
        while not all(batch.settled for batch in batches):
            # Deadline propagation: the parent is the authoritative
            # cancel point.  A raise here unwinds through _run_round's
            # finally (reaping every in-flight worker) and settles as a
            # partial result under on_budget="partial" — the request's
            # deadline stops the work where it runs instead of letting
            # orphaned batches compute past it.
            self.state.timer.check_budget("supervised dispatch")
            now = time.monotonic()
            for batch in batches:
                if (batch.process is None and not batch.settled
                        and now >= batch.next_spawn_at):
                    self._spawn(round_index, snapshot, batch)
            self._drain_queue(batches)
            now = time.monotonic()
            for batch in batches:
                self._check_liveness(batch, now)

    def _spawn(
        self, round_index: int, snapshot: Relation, batch: _Batch
    ) -> None:
        """Dispatch one attempt of one batch to a fresh subprocess."""
        config = self.config
        state = self.state
        batch.attempt += 1
        batch.attempts_used = batch.attempt
        fault = None
        chaos = state.chaos
        worker_fault = getattr(chaos, "worker_fault", None)
        if worker_fault is not None:
            fault = worker_fault(round_index, batch.index, batch.attempt)
        shard = self._shard_dir / f"{batch.key}.a{batch.attempt}.jsonl"
        if shard.exists():
            shard.unlink()
        from dataclasses import replace

        # Ship the *remaining* run budget so the worker cancels itself
        # at the same deadline the parent enforces; the memory budget
        # stays parent-only (worker RSS is not the run's RSS).
        remaining_budget = None
        timer = state.timer
        if timer.budget_seconds is not None:
            remaining_budget = max(
                0.001, timer.budget_seconds - timer.elapsed
            )
        payload = _BatchPayload(
            snapshot=snapshot,
            rfds=self.renuver.rfds,
            config=replace(
                config,
                workers=1,
                time_budget_seconds=remaining_budget,
                memory_budget_bytes=None,
                track_memory=False,
            ),
            active_rfds=list(state.active_rfds),
            key_rfds=list(state.key_rfds),
            cells=list(batch.cells),
            shard_path=str(shard),
            batch_key=batch.key,
            attempt=batch.attempt,
            fault=fault,
            distance_overrides=dict(self.renuver._distance_overrides),
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(payload, self._queue),
            daemon=True,
            name=f"renuver-{batch.key}.a{batch.attempt}",
        )
        try:
            self._start_process(process)
        except OSError as exc:
            self._worker_failed(batch, "spawn", f"{exc}")
            return
        now = time.monotonic()
        batch.process = process
        batch.shard_path = shard
        batch.started_at = now
        batch.last_heartbeat = now
        batch.done_at = None
        logger.debug(
            "dispatched batch %s attempt %d (%d cells%s)",
            batch.key, batch.attempt, len(batch.cells),
            f", fault={fault['kind']}" if fault else "",
        )

    def _start_process(self, process: Any) -> None:
        """Seam for tests to inject spawn failures."""
        process.start()

    def _drain_queue(self, batches: list[_Batch]) -> None:
        """Pull heartbeat/done messages; stale attempts are ignored."""
        by_key = {batch.key: batch for batch in batches}
        deadline = time.monotonic() + 0.02
        while True:
            timeout = max(0.0, deadline - time.monotonic())
            try:
                message = self._queue.get(timeout=timeout)
            except (Empty, OSError):
                return
            kind, key, attempt = message[0], message[1], message[2]
            batch = by_key.get(key)
            if batch is None or attempt != batch.attempt:
                continue  # echo of a reaped attempt
            batch.last_heartbeat = time.monotonic()
            if kind == "done":
                batch.done_at = batch.last_heartbeat

    def _check_liveness(self, batch: _Batch, now: float) -> None:
        """Settle, fail or keep waiting on one in-flight batch."""
        process = batch.process
        if process is None or batch.settled:
            return
        exitcode = process.exitcode
        if batch.done_at is not None:
            process.join(timeout=1.0)
            self._collect(batch)
            return
        if exitcode is not None:
            if exitcode == 0:
                # Exited cleanly but the done message may still be in
                # the queue's feeder pipe; give it a moment.
                if now - batch.last_heartbeat < EXIT_GRACE_SECONDS:
                    return
                # No done message: judge the shard directly.
                self._collect(batch)
                return
            self._kill(batch)
            self._worker_failed(
                batch, "crash", f"worker exited with code {exitcode}"
            )
            return
        if now - batch.last_heartbeat > self.config.worker_timeout_seconds:
            self._kill(batch)
            self._worker_failed(
                batch, "hang",
                f"no heartbeat for {now - batch.last_heartbeat:.2f}s",
            )

    def _collect(self, batch: _Batch) -> None:
        """Validate and absorb a finished worker's shard."""
        results = (
            read_shard(batch.shard_path)
            if batch.shard_path is not None and batch.shard_path.exists()
            else []
        )
        expected = batch.cells
        actual = [
            (result.outcome.row, result.outcome.attribute)
            for result in results
        ]
        if actual != expected:
            self._worker_failed(
                batch, "crash",
                f"shard covers {len(actual)}/{len(expected)} cells",
            )
            return
        batch.results = results
        seconds = time.monotonic() - batch.started_at
        batch.process = None
        self.telemetry.metrics.histogram(
            "renuver_batch_seconds",
            "Wall time from batch dispatch to a settled shard.",
        ).observe(seconds)
        with self.telemetry.tracer.span(
            "supervisor.batch",
            batch=batch.key,
            cells=len(batch.cells),
            attempts=batch.attempt,
            seconds=round(seconds, 4),
        ):
            pass
        logger.debug(
            "batch %s settled after %.3fs (attempt %d)",
            batch.key, seconds, batch.attempt,
        )

    def _worker_failed(
        self, batch: _Batch, reason: str, detail: str
    ) -> None:
        """One failed attempt: count, then retry, poison, or give up."""
        state = self.state
        metrics = self.telemetry.metrics
        batch.process = None
        batch.done_at = None
        if reason in ("crash", "hang"):
            state.report.worker_crashes += 1
            metrics.counter(
                "renuver_worker_crashes_total",
                "Worker attempts lost to a crash or hang.",
            ).inc()
        self.telemetry.tracer.event(
            "worker_failure",
            batch=batch.key,
            attempt=batch.attempt,
            reason=reason,
        )
        logger.warning(
            "batch %s attempt %d failed (%s): %s",
            batch.key, batch.attempt, reason, detail,
        )
        if batch.attempt > self.config.max_retries:
            if reason == "spawn":
                raise WorkerPoolError(
                    f"cannot start worker processes after "
                    f"{batch.attempt} attempts: {detail}"
                )
            batch.poisoned = True
            batch.poison_reason = (
                f"batch {batch.key} exhausted {batch.attempt} attempts; "
                f"last failure: {reason}: {detail}"
            )
            return
        state.report.worker_retries += 1
        metrics.counter(
            "renuver_worker_retries_total",
            "Worker batch retries, by failure reason.",
            reason=reason,
        ).inc()
        backoff = (
            self.config.worker_backoff_seconds
            * (2 ** (batch.attempt - 1))
            * (1.0 + 0.25 * self._jitter_rng.random())
        )
        batch.next_spawn_at = time.monotonic() + backoff

    def _kill(self, batch: _Batch) -> None:
        """Tear down one batch's process, escalating terminate→kill."""
        process = batch.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        else:
            process.join(timeout=1.0)
        batch.process = None

    def _reap_all(self) -> None:
        """Kill every in-flight worker (shutdown / barrier cleanup)."""
        for batch in self._live:
            self._kill(batch)

    # ------------------------------------------------------------------
    # The round barrier
    # ------------------------------------------------------------------
    def _merge_round(self, batches: list[_Batch]) -> None:
        """Replay the round in global sequential order (see module doc).

        Accepts worker outcomes whose footprint was untouched by foreign
        fills/re-activations and whose batch has not diverged; recomputes
        everything else in-process on the live relation.
        """
        renuver = self.renuver
        state = self.state
        config = self.config
        relation = state.calculator.relation
        footprints = self._attribute_footprints(relation)
        unseen: dict[int, set[str]] = {b.index: set() for b in batches}
        stale_rfds: set[int] = set()
        diverged: set[int] = set()
        tracer = self.telemetry.tracer
        for batch in batches:
            for position, (row, attribute) in enumerate(batch.cells):
                state.timer.check_budget("RENUVER imputation")
                if state.memory is not None:
                    state.memory.check_budget("RENUVER imputation")
                if state.chaos is not None:
                    state.chaos.on_cell_start(row, attribute)
                worker_result = (
                    batch.results[position]
                    if batch.results is not None else None
                )
                accept = (
                    worker_result is not None
                    and batch.index not in diverged
                    and batch.index not in stale_rfds
                    and not (footprints[attribute] & unseen[batch.index])
                )
                with tracer.span(
                    "cell", row=row, attribute=attribute
                ) as span:
                    started = time.perf_counter()
                    if accept:
                        outcome = self._accept(batch, worker_result)
                        span.set_attribute("merge", "accepted")
                    else:
                        outcome = self._recompute(batch, row, attribute)
                        span.set_attribute("merge", "recomputed")
                    span.set_attribute("status", outcome.status.value)
                    if self.telemetry.metrics.enabled:
                        renuver._record_cell_metrics(
                            outcome, time.perf_counter() - started
                        )
                state.report.add(outcome)
                if state.writer is not None:
                    state.writer.record_cell(
                        outcome,
                        worker=batch.key if accept else None,
                    )
                reactivated: list[str] = []
                if outcome.filled and config.recheck_keys:
                    before = len(state.active_rfds)
                    renuver._reactivate_keys(state, row, attribute)
                    reactivated = [
                        str(rfd) for rfd in state.active_rfds[before:]
                    ]
                if outcome.filled:
                    for other in batches:
                        if other.index != batch.index:
                            unseen[other.index].add(attribute)
                if reactivated:
                    for other in batches:
                        if other.index != batch.index:
                            stale_rfds.add(other.index)
                if worker_result is not None and batch.index not in diverged:
                    if not self._matches_worker(
                        outcome, reactivated, worker_result
                    ):
                        diverged.add(batch.index)

    def _accept(
        self, batch: _Batch, worker_result: WorkerCellResult
    ) -> Any:
        """Admit one worker-computed cell: apply the fill, absorb audit
        records, keep the books."""
        state = self.state
        outcome = worker_result.outcome
        if outcome.filled:
            relation = state.calculator.relation
            try:
                relation.set_value(
                    outcome.row, outcome.attribute, outcome.value
                )
            except DataError:
                pass  # write applied; listener failure already audited
        for degradation in worker_result.degradations:
            self.renuver._record_degradation(
                state, degradation.row, degradation.attribute,
                degradation.from_tier, degradation.to_tier,
                degradation.reason,
            )
        for event in worker_result.budget_events:
            state.report.budget_events.append(event)
            if state.writer is not None:
                state.writer.record_budget(event)
            self.renuver._count_budget_event(event)
        state.report.worker_cells_accepted += 1
        return outcome

    def _recompute(self, batch: _Batch, row: int, attribute: str) -> Any:
        """Settle one cell in-process on the live relation.

        Poisoned batches recompute on the scalar reference engine (the
        terminal degradation rung) and record the downgrade; stale or
        diverged cells rerun the normal ladder — definitionally the
        sequential outcome.
        """
        renuver = self.renuver
        state = self.state
        tiers = None
        if batch.poisoned:
            renuver._record_degradation(
                state, row, attribute, "worker", "scalar",
                batch.poison_reason,
            )
            tiers = [("scalar", renuver._scalar_retry_engine(state))]
        outcome = renuver._impute_cell_guarded(
            state, row, attribute, tiers=tiers
        )
        state.report.worker_cells_recomputed += 1
        return outcome

    @staticmethod
    def _matches_worker(
        outcome: Any, reactivated: list[str], worker_result: WorkerCellResult
    ) -> bool:
        """Whether the authoritative result equals the worker's view.

        A mismatch means the worker's *later* cells ran against a state
        the merge never reached — the batch has diverged.
        """
        theirs = worker_result.outcome
        if outcome.filled != theirs.filled:
            return False
        if outcome.filled:
            ours_value, theirs_value = outcome.value, theirs.value
            if is_missing(ours_value) != is_missing(theirs_value):
                return False
            if not is_missing(ours_value) and ours_value != theirs_value:
                return False
        return sorted(reactivated) == sorted(worker_result.reactivated)

    def _attribute_footprints(
        self, relation: Relation
    ) -> dict[str, set[str]]:
        """``footprint[A]``: attributes whose fills can affect cell
        outcomes for attribute ``A`` (see the module docstring)."""
        names = list(relation.attribute_names)
        if self.config.keyness_scope == "complete":
            everything = set(names)
            return {name: everything for name in names}
        footprints = {name: {name} for name in names}
        for rfd in self.renuver.rfds:
            attrs = set(rfd.attributes)
            for name in attrs:
                if name in footprints:
                    footprints[name] |= attrs
        return footprints
