"""Fault-tolerance toolkit for the imputation runtime.

Three pieces, matching the runtime's robustness pillars:

* :mod:`repro.robustness.journal` — the JSONL imputation journal behind
  ``Renuver.impute(journal=..., resume_from=...)``: checkpoint every
  settled cell, replay after a crash.
* :mod:`repro.robustness.chaos` — deterministic, seeded fault injectors
  (kernel faults, listener faults, clock skips, donor corruption, a
  kill switch) that exercise the degradation ladder and the journal in
  tests.
* Budget enforcement itself lives with the driver
  (:class:`~repro.core.renuver.RenuverConfig` time/memory/cell budgets)
  and the watchdogs in :mod:`repro.utils.timer` / :mod:`repro.utils.memory`.

See ``docs/ROBUSTNESS.md`` for the full story.
"""

from repro.robustness.chaos import ChaosConfig, ChaosInjector, ChaosKill
from repro.robustness.journal import (
    JOURNAL_VERSION,
    JournalWriter,
    load_journal,
    relation_fingerprint,
    replay_journal,
)

__all__ = [
    "JOURNAL_VERSION",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosKill",
    "JournalWriter",
    "load_journal",
    "relation_fingerprint",
    "replay_journal",
]
