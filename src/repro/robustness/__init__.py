"""Fault-tolerance toolkit for the imputation runtime.

Three pieces, matching the runtime's robustness pillars:

* :mod:`repro.robustness.journal` — the JSONL imputation journal behind
  ``Renuver.impute(journal=..., resume_from=...)``: checkpoint every
  settled cell, replay after a crash.
* :mod:`repro.robustness.chaos` — deterministic, seeded fault injectors
  (kernel faults, listener faults, clock skips, donor corruption, a
  kill switch) that exercise the degradation ladder and the journal in
  tests.
* :mod:`repro.robustness.supervisor` — the supervised parallel runtime
  behind ``RenuverConfig(workers=N)``: crash-isolated worker
  subprocesses with heartbeats, timeouts, retry/backoff and a
  deterministic round-barrier merge.
* Budget enforcement itself lives with the driver
  (:class:`~repro.core.renuver.RenuverConfig` time/memory/cell budgets)
  and the watchdogs in :mod:`repro.utils.timer` / :mod:`repro.utils.memory`.

See ``docs/ROBUSTNESS.md`` for the full story.
"""

from repro.robustness.chaos import ChaosConfig, ChaosInjector, ChaosKill
from repro.robustness.journal import (
    JOURNAL_VERSION,
    JournalWriter,
    WorkerCellResult,
    fingerprint_matches,
    load_journal,
    read_shard,
    relation_fingerprint,
    replay_journal,
)
from repro.robustness.supervisor import Supervisor

__all__ = [
    "JOURNAL_VERSION",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosKill",
    "JournalWriter",
    "Supervisor",
    "WorkerCellResult",
    "fingerprint_matches",
    "load_journal",
    "read_shard",
    "relation_fingerprint",
    "replay_journal",
]
