"""Deterministic fault injection for the fault-tolerant runtime.

The degradation ladder, budget enforcement and journal replay are only
trustworthy if something actually exercises them.  :class:`ChaosInjector`
installs seeded fault injectors behind the two seams the production code
already has — the mutation-listener hook of
:meth:`~repro.dataset.relation.Relation.set_value` and the kernel-call
seam of the donor-scan engines — plus an injectable clock and pre-run
cell corruption:

* **kernel faults** — :class:`~repro.exceptions.InjectedFaultError`
  raised at kernel-call entries (``cell_scan`` / ``is_faultless`` / ...)
  with probability ``kernel_fault_rate`` per call;
* **listener faults** — the same error raised from a mutation listener,
  exercising the write-then-invalidate-then-surface discipline of
  ``Relation.set_value``;
* **clock skips** — the injected clock jumps forward
  ``clock_skip_seconds`` with probability ``clock_skip_rate`` per
  reading, tripping time budgets deterministically;
* **corrupted donor cells** — ``corrupt_cells`` present cells are
  scrambled before the run, so candidate generation and verification
  digest hostile values;
* **kill switch** — ``kill_after_cells`` raises :class:`ChaosKill`
  (a ``BaseException``, so nothing on the recovery ladder can swallow
  it) when the driver starts cell N+1, simulating a hard kill for
  journal-resume tests;
* **disk-full faults** — ``disk_full_rate`` raises ``OSError(ENOSPC)``
  from the disk-write seam of :mod:`repro.utils.atomic` (which the
  checkpoint journal's append path also consults), with probability per
  write; install via :meth:`ChaosInjector.disk_faults`.  Exercises the
  artifact cache's count-as-miss contract, the journal's located
  append errors and the pipeline's failed-stage recovery;
* **worker faults** — ``worker_kill_rate`` / ``worker_hang_rate`` /
  ``worker_slow_rate`` target the supervised runtime's worker
  *subprocesses* (``RenuverConfig.workers > 1``): a killed worker
  SIGKILLs itself mid-batch, a hung worker stops heartbeating until the
  supervisor reaps it, a slow worker sleeps before every cell.  Draws
  are keyed on ``(round, batch, attempt)`` so the plan is independent
  of scheduling (see :meth:`ChaosInjector.worker_fault`);
* **HTTP faults** — ``http_reset_rate`` / ``http_slow_read_rate`` /
  ``http_mid_kill_rate`` / ``http_crash_rate`` target the service's
  HTTP seam (``repro.service.http`` consults
  :meth:`ChaosInjector.http_fault` per request): a *reset* tears the
  connection down with an RST before any response byte, a *slow read*
  stalls the handler mid-request (slow-loris analogue), a *mid kill*
  sends the headers plus half the body and then resets, a *crash*
  raises inside the handler (exercising the 500-and-keep-serving
  path).  The hardened :mod:`repro.service.client` must survive all
  four.

Every channel draws from its own ``random.Random`` stream derived from
``seed``, so two runs with the same config, relation and RFDs inject
*exactly* the same faults at the same points — chaos tests are ordinary
deterministic tests.
"""

from __future__ import annotations

import errno
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.exceptions import ImputationError, InjectedFaultError
from repro.telemetry.logs import get_logger
from repro.utils.rng import spawn_rng

logger = get_logger("robustness.chaos")


class ChaosKill(BaseException):
    """Simulated hard kill (SIGKILL analogue) raised by the kill switch.

    Derives from ``BaseException`` on purpose: the fault-isolation
    ladder catches ``Exception``, and a kill must not be recoverable.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection plan for one run."""

    seed: int = 0
    #: Probability of an InjectedFaultError per kernel-call entry.
    kernel_fault_rate: float = 0.0
    #: Probability of an InjectedFaultError per mutation-listener call.
    listener_fault_rate: float = 0.0
    #: Probability of a forward clock jump per clock reading.
    clock_skip_rate: float = 0.0
    #: Size of each injected clock jump.
    clock_skip_seconds: float = 3600.0
    #: Present cells scrambled before the run starts.
    corrupt_cells: int = 0
    #: Raise ChaosKill when the driver starts cell N+1 (None = never).
    kill_after_cells: int | None = None
    #: Probability of an OSError(ENOSPC) per disk write on the atomic-
    #: write seam (requires :meth:`ChaosInjector.disk_faults`).
    disk_full_rate: float = 0.0
    #: Cap on injected kernel+listener faults (None = unlimited).
    max_faults: int | None = None
    #: Probability that a dispatched worker batch gets SIGKILLed
    #: mid-batch (supervised runtime only).
    worker_kill_rate: float = 0.0
    #: Probability that a dispatched worker batch hangs (stops
    #: heartbeating) mid-batch until the supervisor kills it.
    worker_hang_rate: float = 0.0
    #: Probability that a dispatched worker batch sleeps before every
    #: cell (heartbeats keep flowing; no failure should be declared).
    worker_slow_rate: float = 0.0
    #: Per-cell sleep of a slow worker.
    worker_slow_seconds: float = 0.02
    #: Cells a killed/hung worker completes before the fault fires.
    worker_fault_cells: int = 1
    #: Probability that a request's connection is reset (RST) before
    #: any response byte is sent (service HTTP seam).
    http_reset_rate: float = 0.0
    #: Probability that a request's handler stalls mid-request for
    #: ``http_slow_seconds`` (slow-loris analogue; response still OK).
    http_slow_read_rate: float = 0.0
    #: Probability that a response is cut after the headers plus half
    #: the body, then reset.
    http_mid_kill_rate: float = 0.0
    #: Probability that the handler raises an injected fault (the
    #: server must answer 500 and keep serving).
    http_crash_rate: float = 0.0
    #: Stall applied by a slow-read HTTP fault.
    http_slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in ("kernel_fault_rate", "listener_fault_rate",
                     "clock_skip_rate", "disk_full_rate",
                     "worker_kill_rate", "worker_hang_rate",
                     "worker_slow_rate", "http_reset_rate",
                     "http_slow_read_rate", "http_mid_kill_rate",
                     "http_crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ImputationError(
                    f"{name} must be in [0, 1], got {rate!r}"
                )
        worker_total = (self.worker_kill_rate + self.worker_hang_rate
                        + self.worker_slow_rate)
        if worker_total > 1.0:
            raise ImputationError(
                f"worker fault rates must sum to <= 1, got {worker_total}"
            )
        http_total = (self.http_reset_rate + self.http_slow_read_rate
                      + self.http_mid_kill_rate + self.http_crash_rate)
        if http_total > 1.0:
            raise ImputationError(
                f"http fault rates must sum to <= 1, got {http_total}"
            )
        if self.http_slow_seconds < 0:
            raise ImputationError("http_slow_seconds must be >= 0")
        if self.corrupt_cells < 0:
            raise ImputationError("corrupt_cells must be >= 0")
        if self.kill_after_cells is not None and self.kill_after_cells < 0:
            raise ImputationError(
                "kill_after_cells must be >= 0 when given"
            )
        if self.worker_fault_cells < 0:
            raise ImputationError("worker_fault_cells must be >= 0")
        if self.worker_slow_seconds < 0:
            raise ImputationError("worker_slow_seconds must be >= 0")


class ChaosInjector:
    """The live injectors for one run; pass to ``Renuver.impute(chaos=...)``.

    One injector is good for one run: fault counters and RNG streams
    advance as the run consumes them.  Build a fresh injector (same
    config) to repeat a run identically.
    """

    def __init__(self, config: ChaosConfig | None = None) -> None:
        self.config = config or ChaosConfig()
        seed = self.config.seed
        self._kernel_rng = spawn_rng(seed, "chaos", "kernel")
        self._listener_rng = spawn_rng(seed, "chaos", "listener")
        self._clock_rng = spawn_rng(seed, "chaos", "clock")
        self._corrupt_rng = spawn_rng(seed, "chaos", "corrupt")
        self._disk_rng = spawn_rng(seed, "chaos", "disk")
        self._http_rng = spawn_rng(seed, "chaos", "http")
        self._skew = 0.0
        self.cells_started = 0
        self.faults_injected = 0
        self.clock_skips = 0
        self.disk_faults_injected = 0
        self.worker_faults_planned = 0
        self.http_faults_injected = 0
        self.corrupted: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    # Seam implementations (duck-typed against the driver)
    # ------------------------------------------------------------------
    def kernel_hook(self, op: str, target_row: int, attribute: str) -> None:
        """Kernel-call seam: maybe raise an injected kernel fault."""
        rate = self.config.kernel_fault_rate
        if not self._exhausted() and rate > 0.0 \
                and self._kernel_rng.random() < rate:
            self.faults_injected += 1
            logger.debug(
                "injecting kernel fault #%d in %s at (%d, %s)",
                self.faults_injected, op, target_row, attribute,
            )
            raise InjectedFaultError(
                f"injected kernel fault in {op} at "
                f"({target_row}, {attribute!r})"
            )

    def listener(self, row: int, name: str, value: Any) -> None:
        """Mutation-listener seam: maybe fail after a cell write."""
        rate = self.config.listener_fault_rate
        if not self._exhausted() and rate > 0.0 \
                and self._listener_rng.random() < rate:
            self.faults_injected += 1
            raise InjectedFaultError(
                f"injected listener fault after write to ({row}, {name!r})"
            )

    def clock(self) -> float:
        """Deterministically skewed clock for the run's timers."""
        rate = self.config.clock_skip_rate
        if rate > 0.0 and self._clock_rng.random() < rate:
            self._skew += self.config.clock_skip_seconds
            self.clock_skips += 1
        return time.perf_counter() + self._skew

    def disk_hook(self, path: Path) -> None:
        """Disk-write seam: maybe fail the write with ``ENOSPC``.

        Raises a real ``OSError`` (not :class:`InjectedFaultError`)
        because that is what a full disk raises — consumers must handle
        the genuine error type: the artifact cache counts a miss, the
        journal raises a located :class:`~repro.exceptions
        .JournalError`, the pipeline fails the stage and stays
        resumable.
        """
        rate = self.config.disk_full_rate
        if not self._exhausted() and rate > 0.0 \
                and self._disk_rng.random() < rate:
            self.faults_injected += 1
            self.disk_faults_injected += 1
            logger.debug(
                "injecting ENOSPC on write to %s (#%d)",
                path, self.disk_faults_injected,
            )
            raise OSError(
                errno.ENOSPC,
                f"injected disk-full fault writing {path}",
            )

    @contextmanager
    def disk_faults(self) -> Iterator["ChaosInjector"]:
        """Install :meth:`disk_hook` on the atomic-write seam.

        The hook is process-global (the seam lives in
        :mod:`repro.utils.atomic`), so scope it tightly around the code
        under test; the previous hook is restored on exit.
        """
        from repro.utils.atomic import disk_fault_injection

        with disk_fault_injection(self.disk_hook):
            yield self

    def on_cell_start(self, row: int, attribute: str) -> None:
        """Driver cell boundary: counts cells and pulls the kill switch."""
        limit = self.config.kill_after_cells
        if limit is not None and self.cells_started >= limit:
            raise ChaosKill(
                f"chaos kill switch after {self.cells_started} cells "
                f"(at cell ({row}, {attribute!r}))"
            )
        self.cells_started += 1

    def worker_fault(
        self, round_index: int, batch_index: int, attempt: int
    ) -> dict[str, Any] | None:
        """The fault plan for one worker-batch dispatch, or ``None``.

        Unlike the streaming channels above, the draw is *keyed* on
        ``(round, batch, attempt)`` rather than consumed from a stream:
        the supervisor dispatches and retries batches at wall-clock-
        dependent moments, and a keyed derivation keeps the injected
        fault a pure function of the dispatch coordinates — two runs
        with the same seed fault the exact same attempts regardless of
        scheduling.
        """
        config = self.config
        total = (config.worker_kill_rate + config.worker_hang_rate
                 + config.worker_slow_rate)
        if total <= 0.0:
            return None
        rng = spawn_rng(
            config.seed, "chaos", "worker",
            round_index, batch_index, attempt,
        )
        draw = rng.random()
        fault: dict[str, Any] | None = None
        if draw < config.worker_kill_rate:
            fault = {"kind": "kill",
                     "after_cells": config.worker_fault_cells}
        elif draw < config.worker_kill_rate + config.worker_hang_rate:
            fault = {"kind": "hang",
                     "after_cells": config.worker_fault_cells}
        elif draw < total:
            fault = {"kind": "slow",
                     "seconds": config.worker_slow_seconds}
        if fault is not None:
            self.worker_faults_planned += 1
            logger.debug(
                "planning worker fault %s for round %d batch %d "
                "attempt %d", fault["kind"], round_index, batch_index,
                attempt,
            )
        return fault

    def http_fault(self) -> dict[str, Any] | None:
        """The fault plan for one HTTP request, or ``None``.

        Consumed from the ``http`` stream per request, so a server
        driven by a deterministic request sequence injects the same
        faults at the same requests on every run.  The caller (the
        service's dispatch path) applies the fault; fault kinds:
        ``reset``, ``slow_read`` (with ``seconds``), ``mid_kill``,
        ``crash``.
        """
        config = self.config
        total = (config.http_reset_rate + config.http_slow_read_rate
                 + config.http_mid_kill_rate + config.http_crash_rate)
        if total <= 0.0 or self._exhausted():
            return None
        draw = self._http_rng.random()
        fault: dict[str, Any] | None = None
        if draw < config.http_reset_rate:
            fault = {"kind": "reset"}
        elif draw < config.http_reset_rate + config.http_slow_read_rate:
            fault = {"kind": "slow_read",
                     "seconds": config.http_slow_seconds}
        elif draw < total - config.http_crash_rate:
            fault = {"kind": "mid_kill"}
        elif draw < total:
            fault = {"kind": "crash"}
        if fault is not None:
            self.faults_injected += 1
            self.http_faults_injected += 1
            logger.debug(
                "injecting http fault %s (#%d)",
                fault["kind"], self.http_faults_injected,
            )
        return fault

    def corrupt(self, relation: Relation) -> None:
        """Scramble ``corrupt_cells`` present cells of ``relation``.

        Runs before the imputation loop; corrupted coordinates are kept
        on :attr:`corrupted` for assertions.  String cells get a marker
        prefix plus their reversed text; numeric cells get an extreme
        value — both survive type coercion, so the damage flows through
        the normal codecs.
        """
        budget = self.config.corrupt_cells
        if budget <= 0:
            return
        present = [
            (row, name)
            for name in relation.attribute_names
            for row in range(relation.n_tuples)
            if not relation.is_missing_cell(row, name)
        ]
        rng = self._corrupt_rng
        for row, name in rng.sample(present, min(budget, len(present))):
            value = relation.value(row, name)
            relation.set_value(row, name, _scrambled(value))
            self.corrupted.append((row, name))
        logger.info(
            "chaos: corrupted %d cells of %s",
            len(self.corrupted), relation.name,
        )

    # ------------------------------------------------------------------
    def _exhausted(self) -> bool:
        limit = self.config.max_faults
        return limit is not None and self.faults_injected >= limit


def _scrambled(value: Any) -> Any:
    """A hostile-but-coercible replacement for a present cell value."""
    if is_missing(value):
        return MISSING
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value * 1_000_003 + 7
    if isinstance(value, float):
        return -(abs(value) + 1.0) * 1e9
    text = str(value)
    return f"☠{text[::-1]}☠"
