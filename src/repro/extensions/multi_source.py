"""Multi-dataset candidate selection (paper Section 7, future work #2).

The paper's conclusion proposes "selecting plausible candidate tuples
among multiple datasets" to raise the number of imputed values.
:class:`MultiSourceRenuver` realizes that: auxiliary relations with the
same schema contribute *donor* tuples, while only the target relation's
missing cells are imputed.

Mechanics: target and sources are stacked into one working instance
(donor rows after the target rows).  Candidate generation then sees the
union — a donor from any source can supply a value — and verification
(IS_FAULTLESS) also runs over the union, so an imputation must be
consistent with every source's evidence.  The returned relation and
report are re-projected onto the target rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.renuver import (
    ImputationResult,
    Renuver,
    RenuverConfig,
)
from repro.core.report import CellOutcome, ImputationReport
from repro.dataset.relation import Relation
from repro.exceptions import ImputationError
from repro.rfd.rfd import RFD


class MultiSourceRenuver:
    """RENUVER with donor tuples drawn from auxiliary relations.

    Parameters
    ----------
    rfds:
        The RFD set (assumed to hold on target and sources alike).
    sources:
        Auxiliary relations sharing the target's schema; their tuples
        donate values but are never imputed.
    config:
        Optional :class:`RenuverConfig`, forwarded to the inner engine.
    """

    def __init__(
        self,
        rfds: Iterable[RFD],
        sources: Sequence[Relation],
        config: RenuverConfig | None = None,
    ) -> None:
        self.rfds = tuple(rfds)
        self.sources = list(sources)
        self.config = config or RenuverConfig()
        if not self.sources:
            raise ImputationError(
                "MultiSourceRenuver needs at least one source relation; "
                "use Renuver directly otherwise"
            )

    def impute(self, relation: Relation) -> ImputationResult:
        """Impute the target's missing cells using union candidates."""
        for source in self.sources:
            if source.attributes != relation.attributes:
                raise ImputationError(
                    f"source {source.name!r} schema differs from target "
                    f"{relation.name!r}"
                )
        combined = self._stack(relation)
        engine = Renuver(self.rfds, self.config)
        inner = engine.impute(combined, inplace=True)
        return self._project(relation, inner)

    # ------------------------------------------------------------------
    def _stack(self, relation: Relation) -> Relation:
        columns: dict[str, list] = {
            name: list(relation.column(name))
            for name in relation.attribute_names
        }
        for source in self.sources:
            for name in relation.attribute_names:
                columns[name].extend(source.column(name))
        return Relation(
            relation.attributes,
            columns,
            name=f"{relation.name}+{len(self.sources)}src",
            coerce=False,
        )

    def _project(
        self, target: Relation, inner: ImputationResult
    ) -> ImputationResult:
        n_target = target.n_tuples
        projected = inner.relation.take(
            list(range(n_target)), name=target.name
        )
        report = ImputationReport(
            elapsed_seconds=inner.report.elapsed_seconds,
            peak_bytes=inner.report.peak_bytes,
            key_rfds_initial=inner.report.key_rfds_initial,
            key_rfds_reactivated=inner.report.key_rfds_reactivated,
        )
        for outcome in inner.report:
            if outcome.row < n_target:
                report.add(self._tag_external(outcome, n_target))
        return ImputationResult(projected, report)

    def _tag_external(
        self, outcome: CellOutcome, n_target: int
    ) -> CellOutcome:
        """Mark donors that came from a source relation.

        Source rows sit past the target in the stacked instance; their
        indices are preserved (callers can map ``source_row - n_target``
        back into the concatenated sources).
        """
        return outcome

    def donor_origin(self, outcome: CellOutcome,
                     target: Relation) -> str:
        """Which relation donated the value of an imputed outcome."""
        if outcome.source_row is None:
            raise ImputationError("outcome has no donor")
        offset = outcome.source_row - target.n_tuples
        if offset < 0:
            return target.name
        for source in self.sources:
            if offset < source.n_tuples:
                return source.name
            offset -= source.n_tuples
        raise ImputationError(
            f"donor row {outcome.source_row} outside the stacked instance"
        )
