"""Data-driven threshold bounds (paper Section 7, future work #1).

The paper's conclusion proposes RFD thresholds "whose upper bound depends
on attribute domains and value distributions".  This module realizes
that: :func:`suggest_threshold_limits` inspects the pairwise distance
distribution of every attribute and proposes a per-attribute cap — a
quantile of the observed distances — which plugs straight into
:attr:`repro.discovery.DiscoveryConfig.attribute_limits`.

The rationale: a fixed global limit (the paper's 3/6/9/12/15) treats an
attribute whose distances span [0, 2000] (e.g. car Weight) the same as
one spanning [0, 0.02] (Glass refractive index).  A quantile-based cap
keeps "similar" meaning *similar for this attribute*.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.exceptions import DiscoveryError


def suggest_threshold_limits(
    relation: Relation,
    *,
    quantile: float = 0.25,
    max_pairs: int | None = 100_000,
    string_limit: float = 32.0,
    seed: int = 0,
) -> dict[str, float]:
    """Per-attribute threshold caps from the pair-distance distribution.

    For every attribute the cap is the ``quantile`` of its observed
    pairwise distances (defaults to the lower quartile: two values count
    as similar when they are closer than 75% of random pairs).  String
    distances are measured up to ``string_limit``.  Attributes with no
    comparable pair get a cap of 0.
    """
    if not 0 < quantile < 1:
        raise DiscoveryError("quantile must be in (0, 1)")
    matrix = PairDistanceMatrix(
        relation,
        string_limit=string_limit,
        max_pairs=max_pairs,
        seed=seed,
    )
    limits: dict[str, float] = {}
    for name in relation.attribute_names:
        distances = matrix.distances(name)
        defined = distances[~np.isnan(distances)]
        if defined.size == 0:
            limits[name] = 0.0
            continue
        cap = float(np.quantile(defined, quantile))
        limits[name] = _round_for_domain(cap)
    return limits


def config_with_suggested_limits(
    relation: Relation,
    base: DiscoveryConfig | None = None,
    *,
    quantile: float = 0.25,
    seed: int = 0,
) -> DiscoveryConfig:
    """A :class:`DiscoveryConfig` carrying data-driven attribute limits.

    The global ``threshold_limit`` of ``base`` is widened to the largest
    suggested cap so the per-attribute limits (which are applied as
    minima) become the binding constraint.
    """
    from dataclasses import replace

    base = base or DiscoveryConfig()
    limits = suggest_threshold_limits(
        relation,
        quantile=quantile,
        max_pairs=base.max_pairs or 100_000,
        seed=seed,
    )
    widest = max(limits.values(), default=base.threshold_limit)
    return replace(
        base,
        threshold_limit=max(base.threshold_limit, widest),
        attribute_limits=limits,
    )


def _round_for_domain(cap: float) -> float:
    """Round a cap to a human-scale precision: integers above 1, three
    significant digits below."""
    if cap >= 1:
        return float(math.ceil(cap))
    if cap == 0:
        return 0.0
    magnitude = 10 ** (math.floor(math.log10(cap)) - 2)
    return float(math.ceil(cap / magnitude) * magnitude)
