"""Extensions realizing the paper's Section 7 future-work items:

* :func:`suggest_threshold_limits` — per-attribute threshold bounds
  derived from value distributions,
* :class:`MultiSourceRenuver` — candidate tuples drawn from multiple
  datasets,
* :class:`ImputationSession` — incremental imputation over an
  append-only instance.
"""

from repro.extensions.autothreshold import (
    config_with_suggested_limits,
    suggest_threshold_limits,
)
from repro.extensions.incremental import ImputationSession
from repro.extensions.multi_source import MultiSourceRenuver

__all__ = [
    "ImputationSession",
    "MultiSourceRenuver",
    "config_with_suggested_limits",
    "suggest_threshold_limits",
]
