"""Incremental imputation sessions (paper Section 7, future work #3).

The paper's conclusion points to "incremental scenarios, like the
imputation of time series", where tuples arrive over time and only the
new ones should be processed.  :class:`ImputationSession` keeps a
growing relation and, on each :meth:`impute_pending` call, runs RENUVER
only over the missing cells that appeared since the last call — while
the whole accumulated instance serves as the donor pool, so early
arrivals keep helping later ones.

Cells that could not be imputed stay on a retry list: new arrivals can
provide the donor that was missing before (the session-level analogue of
the paper's key-RFD reactivation).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.renuver import ImputationResult, Renuver, RenuverConfig
from repro.core.report import ImputationReport
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.exceptions import ImputationError
from repro.rfd.rfd import RFD


class ImputationSession:
    """A long-lived RENUVER session over an append-only relation.

    Parameters
    ----------
    schema:
        A relation providing the schema (its tuples seed the session).
    rfds:
        The RFD set assumed to hold on the accumulating instance.
    config:
        Optional :class:`RenuverConfig` for the inner engine.
    retry_unimputed:
        Whether cells that previously failed are retried on the next
        :meth:`impute_pending` (default true).
    """

    def __init__(
        self,
        schema: Relation,
        rfds: Iterable[RFD],
        config: RenuverConfig | None = None,
        *,
        retry_unimputed: bool = True,
    ) -> None:
        self._relation = schema.copy(name=f"{schema.name}@session")
        self._index_plan = self._make_index_plan(
            rfds, config or RenuverConfig()
        )
        self._engine = Renuver(rfds, config, index_plan=self._index_plan)
        self.retry_unimputed = retry_unimputed
        self._pending: set[tuple[int, str]] = set(
            self._relation.missing_cells()
        )
        self._failed: set[tuple[int, str]] = set()
        self.rounds = 0

    def _make_index_plan(
        self, rfds: Iterable[RFD], config: RenuverConfig
    ):
        """One blocking-index plan shared by every round of the session.

        Each :meth:`impute_pending` builds a fresh engine, but the plan
        rides the relation's mutation hook across rounds: appends and
        imputations maintain the indexes incrementally instead of
        rebuilding them per round (``docs/INDEXING.md``).  Only built
        when blocking can engage at some size.
        """
        if config.engine != "vectorized" or config.blocking == "off":
            return None
        from repro.index.plan import IndexPlan

        plan = IndexPlan(
            self._relation,
            rfds,
            max_group_size=config.max_group_size,
        )
        plan.attach()
        return plan

    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The accumulated instance (live; do not mutate directly)."""
        return self._relation

    @property
    def pending_cells(self) -> list[tuple[int, str]]:
        """Missing cells queued for the next round."""
        cells = set(self._pending)
        if self.retry_unimputed:
            cells |= self._failed
        return sorted(cells)

    def append(self, rows: Sequence[Sequence[Any]]) -> list[int]:
        """Append tuples (schema order); returns their row indices."""
        names = self._relation.attribute_names
        start = self._relation.n_tuples
        width = len(names)
        for offset, row in enumerate(rows):
            if len(row) != width:
                raise ImputationError(
                    f"appended row {offset} has {len(row)} values, "
                    f"schema needs {width}"
                )
        appended = _append_rows(self._relation, names, rows)
        for row_index in appended:
            for name in names:
                if is_missing(self._relation.value(row_index, name)):
                    self._pending.add((row_index, name))
        return list(range(start, start + len(appended)))

    def impute_pending(self) -> ImputationResult:
        """Run RENUVER over the queued cells only.

        Returns the result for this round; the session relation is
        updated in place.  Cells that stay missing move to the retry
        list (when ``retry_unimputed``) or are dropped.
        """
        targets = self.pending_cells
        self.rounds += 1
        if not targets:
            return ImputationResult(self._relation, ImputationReport())

        # Run the engine on a scoped copy: blank-protect nothing, simply
        # let it see the full instance; afterwards keep only the target
        # cells' changes (RENUVER only writes missing cells anyway).
        result = self._engine.impute(self._relation, inplace=True)

        round_report = ImputationReport(
            elapsed_seconds=result.report.elapsed_seconds,
            peak_bytes=result.report.peak_bytes,
            key_rfds_initial=result.report.key_rfds_initial,
            key_rfds_reactivated=result.report.key_rfds_reactivated,
        )
        target_set = set(targets)
        for outcome in result.report:
            if (outcome.row, outcome.attribute) in target_set:
                round_report.add(outcome)

        self._pending.clear()
        self._failed = {
            (outcome.row, outcome.attribute)
            for outcome in round_report
            if not outcome.imputed
        }
        return ImputationResult(self._relation, round_report)

    def unimputed_cells(self) -> list[tuple[int, str]]:
        """Cells that failed in past rounds and await retry."""
        return sorted(self._failed)

    def update_rfds(self, rfds: Iterable[RFD]) -> None:
        """Replace the RFD set used by subsequent rounds.

        The service's warm-start sessions pair this with
        :class:`~repro.discovery.incremental.IncrementalDiscovery`:
        as appended tuples loosen, drop or de-key dependencies, the
        maintained set is pushed back into the session so the next
        :meth:`impute_pending` round runs against it.
        """
        rfds = list(rfds)
        if self._index_plan is not None:
            self._index_plan.update_rfds(rfds)
        self._engine = Renuver(
            rfds,
            self._engine.config,
            telemetry=self._engine.telemetry,
            index_plan=self._index_plan,
        )


def _append_rows(
    relation: Relation,
    names: tuple[str, ...],
    rows: Sequence[Sequence[Any]],
) -> list[int]:
    """Append raw rows to a relation in place, returning new indices.

    Uses the relation's own coercion by round-tripping through
    ``set_value``; grows the columns first with missing placeholders.
    """
    from repro.dataset.missing import MISSING

    start = relation.n_tuples
    # Grow every column by the number of new rows.
    for name in names:
        relation._columns[name].extend(  # noqa: SLF001 - same package
            [MISSING] * len(rows)
        )
    for offset, row in enumerate(rows):
        for name, value in zip(names, row):
            relation.set_value(start + offset, name, value)
    return [start + offset for offset in range(len(rows))]
