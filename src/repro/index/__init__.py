"""Blocking indexes for sub-linear donor retrieval.

The donor-scan engines of :mod:`repro.core.donor_scan` compare the
target tuple against *every* other tuple.  This package turns the
engines' threshold comparisons (``distance(t[A], u[A]) <= tau``) into
index probes that return a *superset* of the rows that can satisfy
them — pruning only pairs the RFD thresholds already reject, so the
exact distances recomputed on the surviving rows (and therefore the
imputation outcomes) stay bit-identical to the unblocked scan.

Three per-attribute index kinds implement the
:class:`~repro.index.base.BlockingIndex` protocol:

* :class:`~repro.index.numeric.NumericWindowIndex` — a sorted array of
  the column's float codes; ``|x - v| <= tau`` becomes one bisect
  window,
* :class:`~repro.index.strings.QGramIndex` — length buckets plus a
  q-gram inverted index; banded Levenshtein becomes a length filter
  plus a multiset count filter over shared grams,
* :class:`~repro.index.exact.ExactMatchIndex` — a hash bucket per
  distinct value for attributes only ever probed at ``tau = 0``.

:class:`~repro.index.plan.IndexPlan` composes them per RFD: probe every
LHS attribute, intersect the results, and fall back to the engine's
full scan whenever an attribute cannot serve (counted, never wrong) —
including the ``max_group_size`` anchor cap on pathological hot values.
Indexes are maintained incrementally through the relation's
``set_value`` mutation hook, so service sessions and pipeline INCR runs
reuse them across rounds.  See ``docs/INDEXING.md``.
"""

from repro.index.base import EMPTY_ROWS, BlockingIndex, IndexStats
from repro.index.exact import ExactMatchIndex
from repro.index.numeric import NumericWindowIndex
from repro.index.plan import AUTO_BLOCKING_MIN_TUPLES, IndexPlan
from repro.index.strings import QGramIndex

__all__ = [
    "AUTO_BLOCKING_MIN_TUPLES",
    "BlockingIndex",
    "EMPTY_ROWS",
    "ExactMatchIndex",
    "IndexPlan",
    "IndexStats",
    "NumericWindowIndex",
    "QGramIndex",
]
