"""Hash-bucket index for attributes only ever probed at ``tau = 0``.

Levenshtein distance is zero exactly when the rendered strings are
equal, so for attributes whose every LHS constraint is crisp the whole
probe is one dict lookup.  Probes with a positive threshold decline
(``skip_reason = "unsupported"``) — the plan picks a
:class:`~repro.index.strings.QGramIndex` instead when it knows loose
thresholds are coming.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dataset.missing import MISSING
from repro.index.base import EMPTY_ROWS, IndexStats, sorted_rows


class ExactMatchIndex:
    """Distinct-value hash index over one rendered-string column."""

    kind = "exact"

    def __init__(
        self, column: list[Any], *, max_result: int | None = None
    ) -> None:
        self._max_result = max_result
        self._values: list[str | None] = [
            None if value is MISSING else str(value) for value in column
        ]
        self._rows_by_value: dict[str, set[int]] = {}
        for row, value in enumerate(self._values):
            if value is not None:
                self._rows_by_value.setdefault(value, set()).add(row)
        self.skip_reason = ""
        self.stats = IndexStats()
        self.stats.builds += 1

    # ------------------------------------------------------------------
    def update(self, row: int, value: Any) -> None:
        self.stats.updates += 1
        if row >= len(self._values):
            self._values.extend([None] * (row + 1 - len(self._values)))
        old = self._values[row]
        if old is not None:
            rows = self._rows_by_value[old]
            rows.discard(row)
            if not rows:
                del self._rows_by_value[old]
        new = None if value is MISSING else str(value)
        self._values[row] = new
        if new is not None:
            self._rows_by_value.setdefault(new, set()).add(row)

    # ------------------------------------------------------------------
    def probe(self, value: Any, threshold: float) -> np.ndarray | None:
        self.stats.probes += 1
        if threshold >= 1.0:
            # Edit distance is integral: tau in [0, 1) still means
            # "equal", anything >= 1 admits unequal values.
            self.skip_reason = "unsupported"
            self.stats.skip("unsupported")
            return None
        if value is MISSING:
            self.stats.served += 1
            return EMPTY_ROWS
        rows = self._rows_by_value.get(str(value))
        if rows is None:
            self.stats.served += 1
            return EMPTY_ROWS
        if self._max_result is not None and len(rows) > self._max_result:
            self.skip_reason = "hot_group"
            self.stats.skip("hot_group")
            return None
        self.stats.served += 1
        return sorted_rows(list(rows))
