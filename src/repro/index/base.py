"""The per-attribute blocking-index protocol.

A blocking index answers one question: *which rows can possibly be
within ``threshold`` of this value on this attribute?*  The contract
every implementation must honour:

* :meth:`BlockingIndex.probe` returns a sorted, duplicate-free
  ``int64`` array that is a **superset** of the rows whose distance to
  the probe value is ``<= threshold`` (rows missing on the attribute
  are never required — their distance is undefined and every engine
  mask excludes them).  Over-approximation is always safe: the engine
  recomputes exact distances on whatever the probe returns.
* ``probe`` may instead return ``None`` — "I cannot serve this probe"
  — with :attr:`BlockingIndex.skip_reason` set (``"unsupported"``,
  ``"hot_group"``, ``"probe_cost"``).  The caller falls back to the
  full scan for that attribute: slower, never wrong.
* :meth:`BlockingIndex.update` keeps the index consistent with a
  relation mutation, including appends past the size the index was
  built at (new rows materialize as missing first, exactly how
  ``ImputationSession.append`` grows the relation).  After any update
  sequence the index must answer probes exactly as a fresh build over
  the final column would — the property the hypothesis round-trip
  suite in ``tests/index/`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

#: The canonical empty probe result.
EMPTY_ROWS: np.ndarray = np.empty(0, dtype=np.int64)


@dataclass
class IndexStats:
    """Mutable probe/maintenance tallies of one index."""

    probes: int = 0
    served: int = 0
    updates: int = 0
    builds: int = 0
    skips: dict[str, int] = field(default_factory=dict)

    def skip(self, reason: str) -> None:
        self.skips[reason] = self.skips.get(reason, 0) + 1


@runtime_checkable
class BlockingIndex(Protocol):
    """Structural protocol the three index kinds implement."""

    #: Short kind tag for spans and diagnostics.
    kind: str
    #: Why the last ``probe`` returned ``None`` (engine-internal use).
    skip_reason: str
    stats: IndexStats

    def probe(self, value: Any, threshold: float) -> np.ndarray | None:
        """Sorted unique candidate rows, or ``None`` to decline."""
        ...

    def update(self, row: int, value: Any) -> None:
        """Apply one ``set_value`` mutation (row may be an append)."""
        ...


def sorted_rows(rows: list[int]) -> np.ndarray:
    """A probe result array from a list of (unique) row indices."""
    if not rows:
        return EMPTY_ROWS
    out = np.fromiter(rows, dtype=np.int64, count=len(rows))
    out.sort()
    return out
