"""Sorted-array window index for numeric (and boolean) attributes.

``|x - v| <= tau`` over a column of float codes is a contiguous slice
of the column sorted by value: two ``searchsorted`` bisects bound the
window.  The window edges are widened by a few ULP *of the operand
magnitudes* (not of the possibly-cancelled difference) so a row whose
computed ``|x - v|`` rounds to ``<= tau`` can never be lost to float
rounding of ``v - tau`` / ``v + tau`` — a superset is safe, a miss is
not; the engine recomputes the exact distance on every survivor.

Mutations use dirty-bucket invalidation: a written row is marked stale
in the sorted base (its old code must stop matching) and its new code
goes to a small overlay checked exhaustively per probe.  When the
overlay outgrows ``~sqrt(n)`` entries the base is rebuilt, keeping both
probe and amortized update costs near ``O(log n)``.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from repro.dataset.missing import MISSING
from repro.index.base import EMPTY_ROWS, IndexStats


class NumericWindowIndex:
    """Bisect window index over one numeric or boolean column.

    Parameters
    ----------
    column:
        The column values at build time (``MISSING`` allowed).
    convert:
        Value-to-float encoding; must match the engine codec's
        (``float`` for numerics, ``float(bool(v))`` for booleans) so the
        window and the recomputed distances agree.
    max_result:
        Probes whose window holds more rows than this decline with
        ``skip_reason = "hot_group"`` instead of materializing a group
        the caller would reject anyway.
    """

    kind = "numeric_window"

    def __init__(
        self,
        column: list[Any],
        *,
        convert: Callable[[Any], float] = float,
        max_result: int | None = None,
    ) -> None:
        self._convert = convert
        self._max_result = max_result
        self._values: list[float | None] = [
            None if value is MISSING else float(convert(value))
            for value in column
        ]
        self.skip_reason = ""
        self.stats = IndexStats()
        self._dirty: dict[int, float | None] = {}
        self._stale = np.zeros(len(self._values), dtype=bool)
        self._rebuild()

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        codes = [
            (code, row)
            for row, code in enumerate(self._values)
            if code is not None
        ]
        codes.sort()
        self._sorted_codes = np.fromiter(
            (code for code, _ in codes), dtype=np.float64, count=len(codes)
        )
        self._sorted_rows = np.fromiter(
            (row for _, row in codes), dtype=np.int64, count=len(codes)
        )
        self._dirty.clear()
        self._stale = np.zeros(len(self._values), dtype=bool)
        self.stats.builds += 1

    # ------------------------------------------------------------------
    def update(self, row: int, value: Any) -> None:
        self.stats.updates += 1
        if row >= len(self._values):
            grown = row + 1
            self._values.extend([None] * (grown - len(self._values)))
            stale = np.zeros(grown, dtype=bool)
            stale[: self._stale.shape[0]] = self._stale
            self._stale = stale
        code = None if value is MISSING else float(self._convert(value))
        self._values[row] = code
        self._dirty[row] = code
        self._stale[row] = True
        if len(self._dirty) > max(64, math.isqrt(len(self._values))):
            self._rebuild()

    # ------------------------------------------------------------------
    def probe(self, value: Any, threshold: float) -> np.ndarray | None:
        self.stats.probes += 1
        if value is MISSING:
            self.stats.served += 1
            return EMPTY_ROWS
        target = float(self._convert(value))
        # Widen the window by a few ULP of the operand scale: the rows
        # the engine's |code - target| <= threshold test accepts lie
        # within tau plus half an ULP of tau, and the window-edge
        # subtraction itself may cancel — both are covered here, and a
        # superset is always safe.
        if math.isfinite(target) and math.isfinite(threshold):
            scale = max(abs(target), abs(threshold), 1.0)
            margin = 4.0 * float(np.spacing(scale))
            low = target - threshold - margin
            high = target + threshold + margin
        else:
            low, high = -math.inf, math.inf
        start = int(np.searchsorted(self._sorted_codes, low, side="left"))
        stop = int(np.searchsorted(self._sorted_codes, high, side="right"))
        if (
            self._max_result is not None
            and stop - start + len(self._dirty) > self._max_result
        ):
            self.skip_reason = "hot_group"
            self.stats.skip("hot_group")
            return None
        rows = self._sorted_rows[start:stop]
        if self._dirty:
            rows = rows[~self._stale[rows]]
            extra = [
                row
                for row, code in self._dirty.items()
                if code is not None and low <= code <= high
            ]
            if extra:
                rows = np.concatenate(
                    [rows, np.fromiter(extra, dtype=np.int64)]
                )
        out = np.sort(rows)
        if self._max_result is not None and out.size > self._max_result:
            self.skip_reason = "hot_group"
            self.stats.skip("hot_group")
            return None
        self.stats.served += 1
        return out
