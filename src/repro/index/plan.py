"""Per-RFD candidate composition over the per-attribute indexes.

:class:`IndexPlan` owns one lazily-built
:class:`~repro.index.base.BlockingIndex` per LHS attribute of the RFD
set and answers the engine's question — *which rows can satisfy every
LHS constraint of this RFD against this target row?* — by intersecting
the per-attribute probe results (smallest first).  The plan never
guesses: any probe an index declines falls back to the engine's full
scan for that attribute, and when *no* attribute could be probed the
whole composition returns ``None`` (full-scan fallback, counted in
``renuver_index_fallbacks_total{reason}``).

The plan attaches to the relation's mutation hook (the same dirty-cell
seam the distance kernels ride), so tentative writes, rollbacks and
session appends keep every built index consistent — service sessions
and pipeline INCR runs hand one plan to successive engine rounds
instead of rebuilding per round.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.dataset.attribute import AttributeType
from repro.dataset.missing import MISSING
from repro.dataset.relation import Relation
from repro.index.base import EMPTY_ROWS, BlockingIndex
from repro.index.exact import ExactMatchIndex
from repro.index.numeric import NumericWindowIndex
from repro.index.strings import QGramIndex
from repro.rfd.constraint import Constraint
from repro.rfd.rfd import RFD
from repro.telemetry import NULL_TELEMETRY

#: Smallest relation where ``blocking="auto"`` engages: below this the
#: vectorized full scan is already cheap and index upkeep would be pure
#: overhead (the paper-scale datasets stay on the unblocked path).
AUTO_BLOCKING_MIN_TUPLES = 5000

_UNINDEXED = "unindexed"


class IndexPlan:
    """Blocking indexes + composition for one relation and RFD set.

    Parameters
    ----------
    relation:
        The live instance the indexes shadow.
    rfds:
        The RFD set whose LHS attributes need indexes; per-attribute
        kinds derive from the attribute type and the largest LHS
        threshold (strings probed only crisply get the exact-match
        index, loose ones the q-gram index).
    max_group_size:
        Anchor cap: any probe (or composed candidate set) larger than
        this declines to the full scan — hot values never cost more
        than the scan they replace, and never change outcomes.
    override_names:
        Attributes with overridden distance functions; their semantics
        are opaque, so they are never indexed (probes fall back).
    q:
        Gram width of the string indexes.
    """

    def __init__(
        self,
        relation: Relation,
        rfds: Iterable[RFD],
        *,
        max_group_size: int = 4096,
        override_names: Iterable[str] = (),
        q: int = 2,
    ) -> None:
        if max_group_size < 1:
            raise ValueError("max_group_size must be >= 1")
        self.relation = relation
        self.max_group_size = max_group_size
        self.q = q
        self._override_names = frozenset(override_names)
        self._kinds: dict[str, str | None] = {}
        self._indexes: dict[str, BlockingIndex] = {}
        self._attached = False
        self._telemetry = NULL_TELEMETRY
        self._probe_counter: object | None = None
        self._pruned_counter: object | None = None
        self._fallback_counters: dict[str, object] = {}
        self.probes = 0
        self.served = 0
        self.pruned_pairs = 0
        self.fallbacks = 0
        self.update_rfds(rfds)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register the mutation hook on the relation (idempotent)."""
        if not self._attached:
            self.relation.add_mutation_listener(self._on_set_value)
            self._attached = True

    def close(self) -> None:
        """Unregister the mutation hook (idempotent)."""
        if self._attached:
            self.relation.remove_mutation_listener(self._on_set_value)
            self._attached = False

    def set_telemetry(self, telemetry: object) -> None:
        """Attach a run's telemetry (tracer + metrics registry)."""
        self._telemetry = telemetry or NULL_TELEMETRY
        self._probe_counter = None
        self._pruned_counter = None
        self._fallback_counters.clear()

    def update_rfds(self, rfds: Iterable[RFD]) -> None:
        """Recompute per-attribute kinds for a new RFD set.

        Attributes whose kind changes (an exact index facing loose
        thresholds for the first time) drop their built index; it is
        rebuilt lazily at the next probe.
        """
        limits: dict[str, float] = {}
        for rfd in rfds:
            for constraint in rfd.lhs:
                current = limits.get(constraint.attribute)
                if current is None or constraint.threshold > current:
                    limits[constraint.attribute] = constraint.threshold
        kinds: dict[str, str | None] = {}
        for name, limit in limits.items():
            kinds[name] = self._kind_for(name, limit)
        for name, kind in kinds.items():
            if self._kinds.get(name) != kind:
                self._indexes.pop(name, None)
        self._kinds = kinds

    def _kind_for(self, name: str, limit: float) -> str | None:
        if name in self._override_names:
            return None
        attribute = self.relation.attribute(name)
        if attribute.type.is_numeric:
            return "numeric_window"
        if attribute.type is AttributeType.BOOLEAN:
            return "numeric_window"
        if limit < 1.0:
            return "exact"
        return "qgram"

    def _on_set_value(self, row: int, name: str, value: Any) -> None:
        index = self._indexes.get(name)
        if index is not None:
            index.update(row, value)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def candidate_rows(
        self, target_row: int, constraints: Sequence[Constraint]
    ) -> np.ndarray | None:
        """Rows that can satisfy every constraint against the target.

        Returns a sorted unique ``int64`` array (the target row always
        excluded; an empty array when the target is missing on some
        constrained attribute — no pair can satisfy it then), or
        ``None`` when no constraint could be probed: the caller must
        run its full scan.  The result is a superset of the truly
        satisfying rows; exact distances are always recomputed on it.
        """
        tracer = self._telemetry.tracer
        if not tracer.enabled:
            return self._candidate_rows(target_row, constraints)
        with tracer.span(
            "index.probe",
            row=target_row,
            attributes=",".join(
                constraint.attribute for constraint in constraints
            ),
        ) as span:
            result = self._candidate_rows(target_row, constraints)
            span.set_attribute(
                "candidates",
                -1 if result is None else int(result.size),
            )
            return result

    def _candidate_rows(
        self, target_row: int, constraints: Sequence[Constraint]
    ) -> np.ndarray | None:
        relation = self.relation
        probes: list[np.ndarray] = []
        for constraint in constraints:
            index = self._index_for(constraint.attribute)
            if index is None:
                self._count_fallback(_UNINDEXED)
                continue
            value = relation.value(target_row, constraint.attribute)
            if value is MISSING:
                # The target cannot form a within-threshold pair on a
                # missing LHS cell; the engine's masks agree (NaN
                # compares false).
                self._count_probe()
                return EMPTY_ROWS
            rows = index.probe(value, constraint.threshold)
            self._count_probe()
            if rows is None:
                self._count_fallback(index.skip_reason or _UNINDEXED)
                continue
            probes.append(rows)
        if not probes:
            self._count_fallback("full_scan")
            return None
        probes.sort(key=lambda rows: rows.size)
        out = probes[0]
        for rows in probes[1:]:
            if out.size == 0:
                break
            out = np.intersect1d(out, rows, assume_unique=True)
        out = out[out != target_row]
        self.served += 1
        pruned = max(0, relation.n_tuples - 1 - int(out.size))
        self.pruned_pairs += pruned
        self._count_pruned(pruned)
        return out

    def _index_for(self, name: str) -> BlockingIndex | None:
        index = self._indexes.get(name)
        if index is not None:
            return index
        kind = self._kinds.get(name)
        if kind is None:
            return None
        tracer = self._telemetry.tracer
        if tracer.enabled:
            with tracer.span(
                "index.build",
                attribute=name,
                kind=kind,
                n_tuples=self.relation.n_tuples,
            ):
                index = self._build_index(name, kind)
        else:
            index = self._build_index(name, kind)
        self._indexes[name] = index
        return index

    def _build_index(self, name: str, kind: str) -> BlockingIndex:
        column = self.relation._columns[name]  # noqa: SLF001 - same package
        cap = self.max_group_size
        if kind == "numeric_window":
            attribute = self.relation.attribute(name)
            if attribute.type is AttributeType.BOOLEAN:
                return NumericWindowIndex(
                    column,
                    convert=lambda value: float(bool(value)),
                    max_result=cap,
                )
            return NumericWindowIndex(column, max_result=cap)
        if kind == "exact":
            return ExactMatchIndex(column, max_result=cap)
        return QGramIndex(
            column,
            q=self.q,
            max_result=cap,
            max_probe_cost=max(1024, 8 * cap),
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _count_probe(self) -> None:
        self.probes += 1
        counter = self._probe_counter
        if counter is None:
            counter = self._telemetry.metrics.counter(
                "renuver_index_probes_total",
                "Blocking-index probes issued by the blocked engine.",
            )
            self._probe_counter = counter
        counter.inc()  # type: ignore[attr-defined]

    def _count_pruned(self, pruned: int) -> None:
        counter = self._pruned_counter
        if counter is None:
            counter = self._telemetry.metrics.counter(
                "renuver_index_pruned_pairs_total",
                "Donor pairs skipped thanks to blocking-index probes.",
            )
            self._pruned_counter = counter
        counter.inc(pruned)  # type: ignore[attr-defined]

    def _count_fallback(self, reason: str) -> None:
        self.fallbacks += 1
        counter = self._fallback_counters.get(reason)
        if counter is None:
            counter = self._telemetry.metrics.counter(
                "renuver_index_fallbacks_total",
                "Blocking probes that fell back to the full scan.",
                reason=reason,
            )
            self._fallback_counters[reason] = counter
        counter.inc()  # type: ignore[attr-defined]

    @property
    def counters(self) -> dict[str, int]:
        """Plan counters for the imputation report."""
        return {
            "index_probes": self.probes,
            "index_served_probes": self.served,
            "index_pruned_pairs": self.pruned_pairs,
            "index_fallbacks": self.fallbacks,
            "index_builds": sum(
                index.stats.builds for index in self._indexes.values()
            ),
            "index_updates": sum(
                index.stats.updates for index in self._indexes.values()
            ),
        }
