"""Length- and q-gram-bucketed inverted index for banded Levenshtein.

Two classic filters bound the edit distance from below, and both are
bucket lookups here:

* **Length filter** — ``|len(a) - len(b)| > tau`` forces more than
  ``tau`` insertions, so candidates live in the length buckets
  ``len(target) - tau .. len(target) + tau``.
* **Count filter** — one edit operation destroys at most ``q``
  overlapping q-grams, so two strings within distance ``tau`` share at
  least ``max(len(a), len(b)) - q + 1 - q*tau`` grams, counted as a
  *multiset* intersection (set semantics would under-count repeated
  grams and could prune a true match).

A probe unions the rows of every distinct value surviving both filters.
When the count filter binds (``len(target) - q + 1 - q*tau > 0``) every
survivor shares at least one gram with the target, so only the postings
of the target's grams are walked; otherwise the length buckets are
swept with the length filter alone (the count filter is optional — it
only ever prunes).  Either walk declines with ``skip_reason =
"probe_cost"`` when the postings it would touch exceed the probe-cost
cap: hot gram distributions are exactly where a linear walk stops
beating the full scan.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.dataset.missing import MISSING
from repro.index.base import EMPTY_ROWS, IndexStats, sorted_rows


def qgrams(value: str, q: int) -> dict[str, int]:
    """Multiset of overlapping q-grams as a gram -> count mapping."""
    grams: dict[str, int] = {}
    for position in range(len(value) - q + 1):
        gram = value[position:position + q]
        grams[gram] = grams.get(gram, 0) + 1
    return grams


class QGramIndex:
    """Inverted q-gram index over one rendered-string column."""

    kind = "qgram"

    def __init__(
        self,
        column: list[Any],
        *,
        q: int = 2,
        max_result: int | None = None,
        max_probe_cost: int | None = None,
    ) -> None:
        if q < 1:
            raise ValueError("q must be >= 1")
        self.q = q
        self._max_result = max_result
        self._max_probe_cost = max_probe_cost
        self._values: list[str | None] = [
            None if value is MISSING else str(value) for value in column
        ]
        self._rows_by_value: dict[str, set[int]] = {}
        self._values_by_length: dict[int, set[str]] = {}
        #: gram -> {distinct value -> gram count in that value}
        self._postings: dict[str, dict[str, int]] = {}
        for row, value in enumerate(self._values):
            if value is None:
                continue
            rows = self._rows_by_value.get(value)
            if rows is None:
                self._rows_by_value[value] = {row}
                self._add_value(value)
            else:
                rows.add(row)
        self.skip_reason = ""
        self.stats = IndexStats()
        self.stats.builds += 1

    # ------------------------------------------------------------------
    # Distinct-value bucket maintenance
    # ------------------------------------------------------------------
    def _add_value(self, value: str) -> None:
        self._values_by_length.setdefault(len(value), set()).add(value)
        for gram, count in qgrams(value, self.q).items():
            self._postings.setdefault(gram, {})[value] = count

    def _drop_value(self, value: str) -> None:
        bucket = self._values_by_length[len(value)]
        bucket.discard(value)
        if not bucket:
            del self._values_by_length[len(value)]
        for gram in qgrams(value, self.q):
            postings = self._postings[gram]
            del postings[value]
            if not postings:
                del self._postings[gram]

    def update(self, row: int, value: Any) -> None:
        self.stats.updates += 1
        if row >= len(self._values):
            self._values.extend([None] * (row + 1 - len(self._values)))
        old = self._values[row]
        if old is not None:
            rows = self._rows_by_value[old]
            rows.discard(row)
            if not rows:
                del self._rows_by_value[old]
                self._drop_value(old)
        new = None if value is MISSING else str(value)
        self._values[row] = new
        if new is not None:
            rows = self._rows_by_value.get(new)
            if rows is None:
                self._rows_by_value[new] = {row}
                self._add_value(new)
            else:
                rows.add(row)

    # ------------------------------------------------------------------
    def probe(self, value: Any, threshold: float) -> np.ndarray | None:
        self.stats.probes += 1
        if value is MISSING:
            self.stats.served += 1
            return EMPTY_ROWS
        target = str(value)
        tau = int(math.floor(threshold))  # distances are integral
        if tau < 0:
            self.stats.served += 1
            return EMPTY_ROWS
        q = self.q
        target_length = len(target)
        low = max(0, target_length - tau)
        high = target_length + tau
        min_required = target_length - q + 1 - q * tau
        if min_required > 0:
            matches = self._count_filter_walk(
                target, tau, low, high, min_required
            )
        else:
            matches = self._length_bucket_walk(low, high)
        if matches is None:
            self.skip_reason = "probe_cost"
            self.stats.skip("probe_cost")
            return None
        rows: list[int] = []
        for match in matches:
            rows.extend(self._rows_by_value[match])
        if self._max_result is not None and len(rows) > self._max_result:
            self.skip_reason = "hot_group"
            self.stats.skip("hot_group")
            return None
        self.stats.served += 1
        return sorted_rows(rows)

    def _count_filter_walk(
        self,
        target: str,
        tau: int,
        low: int,
        high: int,
        min_required: int,
    ) -> list[str] | None:
        """Survivors when every match must share >= 1 gram: walk only
        the postings of the target's grams."""
        target_grams = qgrams(target, self.q)
        postings_lists = []
        cost = 0
        for gram, target_count in target_grams.items():
            postings = self._postings.get(gram)
            if postings:
                postings_lists.append((target_count, postings))
                cost += len(postings)
        if self._max_probe_cost is not None and cost > self._max_probe_cost:
            return None
        shared: dict[str, int] = {}
        get = shared.get
        for target_count, postings in postings_lists:
            for candidate, count in postings.items():
                shared[candidate] = get(candidate, 0) + (
                    target_count if target_count < count else count
                )
        q = self.q
        target_length = len(target)
        matches = []
        for candidate, shared_count in shared.items():
            length = len(candidate)
            if length < low or length > high:
                continue
            longer = length if length > target_length else target_length
            if shared_count < longer - q + 1 - q * tau:
                continue
            matches.append(candidate)
        return matches

    def _length_bucket_walk(self, low: int, high: int) -> list[str] | None:
        """Survivors by length filter alone (count filter not binding)."""
        buckets = [
            self._values_by_length[length]
            for length in range(low, high + 1)
            if length in self._values_by_length
        ]
        if self._max_probe_cost is not None:
            cost = sum(len(bucket) for bucket in buckets)
            if cost > self._max_probe_cost:
                return None
        matches: list[str] = []
        for bucket in buckets:
            matches.extend(bucket)
        return matches
