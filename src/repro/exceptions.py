"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes mirror the main
subsystems (dataset handling, RFD parsing, discovery, imputation and
evaluation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is invalid or an attribute lookup failed."""


class DataError(ReproError):
    """A relation instance contains malformed or unusable data."""


class CSVFormatError(DataError):
    """A CSV file could not be parsed into a relation."""


class RFDParseError(ReproError):
    """A textual RFD specification could not be parsed."""


class RFDValidationError(ReproError):
    """An RFD references unknown attributes or carries invalid thresholds."""


class DiscoveryError(ReproError):
    """RFD discovery was configured or executed incorrectly."""


class ImputationError(ReproError):
    """The imputation engine was misused (bad inputs, unknown attribute)."""


class EvaluationError(ReproError):
    """Evaluation of an imputation result failed (bad rules, bad masks)."""


class RuleFileError(EvaluationError):
    """A validation rule file is malformed."""


class JournalError(ReproError):
    """An imputation journal is unreadable or does not match the run."""


class TelemetryError(ReproError):
    """The telemetry layer was misused (bad metric name, type clash,
    non-monotonic histogram buckets, malformed trace file)."""


class InjectedFaultError(ReproError):
    """A deterministic fault raised by the chaos harness.

    Never raised by production code paths; the fault injectors of
    :mod:`repro.robustness.chaos` use it so tests can tell injected
    failures apart from genuine bugs.
    """


class WorkerPoolError(ReproError):
    """The supervised worker pool could not run at all.

    Raised by :class:`repro.robustness.supervisor.Supervisor` when worker
    subprocesses cannot even be spawned after the configured retries —
    total pool exhaustion.  A *batch* that exhausts its retries never
    raises this: it degrades to in-process scalar execution instead (see
    ``docs/ROBUSTNESS.md``).  The CLI maps this error to exit code 7.
    """


class ServiceError(ReproError):
    """The imputation service could not start or operate.

    Raised by :mod:`repro.service` for server-level failures — the
    listen socket cannot bind, the artifact directory is unusable, a
    session store overflow the caller asked to treat as fatal.  Request-
    level problems (bad payloads, unknown sessions, backpressure) are
    answered with HTTP status codes instead and never raise this.  The
    CLI maps this error to exit code 8.
    """


class ServiceClientError(ServiceError):
    """The hardened service client gave up on a request.

    Raised by :mod:`repro.service.client` once its retry budget (or the
    caller's deadline) is exhausted, or for a non-retryable HTTP error.
    ``status`` carries the last HTTP status code, if any response was
    received at all.
    """

    def __init__(self, message: str, *, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class PipelineError(ReproError):
    """A continuous-ingestion pipeline run could not start or commit.

    Raised by :mod:`repro.pipeline` for run-level failures — the ingest
    directory is unusable, a stage died on an I/O error (e.g. ENOSPC
    while reconciling the store), an in-progress run blocks a new one.
    Failures always name the run and stage; the run-state store stays
    consistent so ``pipeline resume`` can retake the run once the cause
    clears.  The CLI maps this error (and its subclasses below) to exit
    code 9.
    """


class StateError(PipelineError):
    """The pipeline's run-state store is unreadable or inconsistent.

    Raised when both ``state.json`` and its ``state.json.prev`` fallback
    fail to parse, or when an envelope's fields do not validate.  A
    truncated ``state.json`` alone never raises: the store falls back to
    the previous envelope with a counted warning.
    """


class LeaseError(PipelineError):
    """The pipeline lease is held by a live run.

    Raised when acquiring the run lock while another process holds a
    non-stale lease.  A *stale* lease (dead owner process, or no
    heartbeat within its TTL) never raises: exactly one contender takes
    it over and the rest get this error.
    """


class BudgetExceededError(ReproError):
    """A configured time or memory budget was exhausted.

    Mirrors the paper's 48-hour / 30 GB stress-test limits: benchmark
    harnesses convert this into the "TL"/"ML" table entries instead of
    letting a run go unbounded.

    Attributes
    ----------
    scope:
        ``"run"`` (the whole imputation) or ``"cell"`` (one missing
        cell's deadline).  The driver downgrades cell-scope overruns to
        the fallback tier; run-scope overruns end the run.
    kind:
        ``"time"`` or ``"memory"`` — the paper's "TL" vs "ML".
    partial_result:
        When the RENUVER driver raises a run-scope overrun it attaches
        the :class:`~repro.core.renuver.ImputationResult` built so far,
        so the work done before the limit is preserved.
    """

    def __init__(self, message: str, *, elapsed_seconds: float | None = None,
                 peak_bytes: int | None = None, scope: str = "run",
                 kind: str = "time") -> None:
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds
        self.peak_bytes = peak_bytes
        self.scope = scope
        self.kind = kind
        self.partial_result = None
