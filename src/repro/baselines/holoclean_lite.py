"""HoloClean-lite — probabilistic, feature-based imputation
(Rekatsinas et al., VLDB 2017).

HoloClean frames repair as inference in a probabilistic graphical model
whose factors are learned from the data itself.  This reproduction keeps
the pipeline HoloClean applies to *missing* cells, at laptop scale:

1. *Domain pruning*: candidates for a missing cell are the attribute's
   observed values that co-occur with the tuple's observed context
   values (numeric context values are quantized into bins first); the
   top-``domain_size`` by co-occurrence survive.
2. *Featurization*: each (cell, candidate) pair gets co-occurrence
   features (max and mean conditional probability given the context),
   a frequency prior, and a denial-constraint violation count — the
   "minimality + integrity" signals of the original.
3. *Learning*: feature weights are trained with multinomial logistic
   regression over *observed* cells treated as weakly supervised labels
   (hide one observed cell, build its domain, the true value is the
   positive class) — numpy SGD, seeded.
4. *Inference*: the candidate with the highest score is imputed.

Unlike RENUVER, HoloClean always commits to its best guess when a domain
exists — there is no consistency-driven abstention — which is exactly why
its precision trails RENUVER's in the paper's comparison.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any

import numpy as np

from repro.baselines.base import BaseImputer
from repro.baselines.dc import DenialConstraint
from repro.core.report import ImputationReport
from repro.dataset.attribute import AttributeType
from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.exceptions import ImputationError
from repro.utils.rng import spawn_rng

_N_FEATURES = 4


class HolocleanLiteImputer(BaseImputer):
    """Probabilistic repair of missing cells with learned factor weights.

    Parameters
    ----------
    constraints:
        Denial constraints used as integrity features (may be empty).
    domain_size:
        Maximum candidates per cell after pruning.
    epochs / learning_rate:
        SGD schedule for weight learning.
    training_cells:
        Number of observed cells sampled as weak supervision.
    seed:
        Seed for sampling and SGD shuffling.
    """

    name = "holoclean"

    def __init__(
        self,
        constraints: list[DenialConstraint] | None = None,
        *,
        domain_size: int = 20,
        epochs: int = 15,
        learning_rate: float = 0.5,
        training_cells: int = 200,
        seed: int = 0,
    ) -> None:
        if domain_size < 1:
            raise ImputationError("domain_size must be >= 1")
        if epochs < 1:
            raise ImputationError("epochs must be >= 1")
        if learning_rate <= 0:
            raise ImputationError("learning_rate must be positive")
        if training_cells < 1:
            raise ImputationError("training_cells must be >= 1")
        self.constraints = list(constraints or [])
        self.domain_size = domain_size
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.training_cells = training_cells
        self.seed = seed

    # ------------------------------------------------------------------
    def _impute_cells(
        self, working: Relation, report: ImputationReport
    ) -> None:
        stats = _CooccurrenceStats(working)
        weights = self._learn_weights(working, stats)
        for row, attribute in working.missing_cells():
            self._check_budget()
            candidates = stats.domain(working, row, attribute,
                                      self.domain_size)
            if not candidates:
                self._record_skipped(report, row, attribute)
                continue
            features = np.array(
                [
                    self._features(working, stats, row, attribute, value)
                    for value in candidates
                ]
            )
            scores = features @ weights
            best = int(np.argmax(scores))
            value = candidates[best]
            working.set_value(row, attribute, value)
            self._record_imputed(
                report, row, attribute, working.value(row, attribute)
            )

    # ------------------------------------------------------------------
    def _features(
        self,
        relation: Relation,
        stats: "_CooccurrenceStats",
        row: int,
        attribute: str,
        value: Any,
    ) -> list[float]:
        max_cooc, mean_cooc = stats.context_probabilities(
            relation, row, attribute, value
        )
        prior = stats.prior(attribute, value)
        violation = self._violation_feature(relation, row, attribute, value)
        return [max_cooc, mean_cooc, prior, violation]

    def _violation_feature(
        self, relation: Relation, row: int, attribute: str, value: Any
    ) -> float:
        if not self.constraints:
            return 0.0
        relation.set_value(row, attribute, value)
        try:
            count = 0
            for constraint in self.constraints:
                if attribute not in constraint.attributes:
                    continue
                count += constraint.violations_with_row(relation, row)
        finally:
            relation.set_value(row, attribute, MISSING)
        # Squash: one violation should hurt a lot, ten not 10x more.
        return -math.log1p(count)

    # ------------------------------------------------------------------
    def _learn_weights(
        self, relation: Relation, stats: "_CooccurrenceStats"
    ) -> np.ndarray:
        """SGD on hidden observed cells (weak supervision)."""
        rng = spawn_rng(self.seed, "holoclean-train", relation.name)
        observed = [
            (row, attribute.name)
            for attribute in relation.attributes
            for row in range(relation.n_tuples)
            if not is_missing(relation.value(row, attribute.name))
        ]
        if not observed:
            return np.ones(_N_FEATURES)
        sample = observed
        if len(observed) > self.training_cells:
            sample = rng.sample(observed, self.training_cells)
        examples = []
        for row, attribute in sample:
            truth = relation.value(row, attribute)
            relation.set_value(row, attribute, MISSING)
            try:
                candidates = stats.domain(
                    relation, row, attribute, self.domain_size
                )
                if truth not in candidates or len(candidates) < 2:
                    continue
                features = np.array(
                    [
                        self._features(relation, stats, row, attribute, v)
                        for v in candidates
                    ]
                )
            finally:
                relation.set_value(row, attribute, truth)
            examples.append((features, candidates.index(truth)))
        if not examples:
            return np.ones(_N_FEATURES)
        weights = np.zeros(_N_FEATURES)
        for _ in range(self.epochs):
            rng.shuffle(examples)
            for features, label in examples:
                scores = features @ weights
                scores -= scores.max()
                probabilities = np.exp(scores)
                probabilities /= probabilities.sum()
                gradient = features[label] - probabilities @ features
                weights += self.learning_rate * gradient
        return weights


class _CooccurrenceStats:
    """Co-occurrence and frequency statistics over the observed cells."""

    def __init__(self, relation: Relation) -> None:
        self._priors: dict[str, Counter] = {}
        self._cooccur: dict[tuple[str, str], dict[Any, Counter]] = {}
        self._bins: dict[str, float] = {}
        names = relation.attribute_names
        for attribute in relation.attributes:
            if attribute.type.is_numeric:
                self._bins[attribute.name] = _bin_width(
                    relation, attribute.name
                )
        for name in names:
            self._priors[name] = Counter(
                value
                for value in relation.column(name)
                if not is_missing(value)
            )
        for target in names:
            for context in names:
                if context == target:
                    continue
                table: dict[Any, Counter] = {}
                for row in range(relation.n_tuples):
                    target_value = relation.value(row, target)
                    context_value = relation.value(row, context)
                    if is_missing(target_value) or is_missing(context_value):
                        continue
                    key = self._quantize(context, context_value)
                    table.setdefault(key, Counter())[target_value] += 1
                self._cooccur[(target, context)] = table

    def _quantize(self, attribute: str, value: Any) -> Any:
        width = self._bins.get(attribute)
        if width is None or is_missing(value):
            return value
        return round(float(value) / width)

    def prior(self, attribute: str, value: Any) -> float:
        """Pr(value) over the observed cells of ``attribute``."""
        counts = self._priors[attribute]
        total = sum(counts.values())
        if not total:
            return 0.0
        return counts.get(value, 0) / total

    def context_probabilities(
        self, relation: Relation, row: int, attribute: str, value: Any
    ) -> tuple[float, float]:
        """(max, mean) of Pr(value | context attr = observed value)."""
        probabilities: list[float] = []
        for context in relation.attribute_names:
            if context == attribute:
                continue
            context_value = relation.value(row, context)
            if is_missing(context_value):
                continue
            table = self._cooccur[(attribute, context)]
            counter = table.get(self._quantize(context, context_value))
            if not counter:
                continue
            total = sum(counter.values())
            probabilities.append(counter.get(value, 0) / total)
        if not probabilities:
            return 0.0, 0.0
        return max(probabilities), sum(probabilities) / len(probabilities)

    def domain(
        self,
        relation: Relation,
        row: int,
        attribute: str,
        domain_size: int,
    ) -> list[Any]:
        """Pruned candidate domain for one cell, best-supported first."""
        votes: Counter = Counter()
        for context in relation.attribute_names:
            if context == attribute:
                continue
            context_value = relation.value(row, context)
            if is_missing(context_value):
                continue
            table = self._cooccur[(attribute, context)]
            counter = table.get(self._quantize(context, context_value))
            if counter:
                votes.update(counter)
        if not votes:
            votes = Counter(self._priors[attribute])
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return [value for value, _ in ranked[:domain_size]]


def _bin_width(relation: Relation, attribute: str) -> float:
    """Quantization step for numeric co-occurrence: ~20 bins over the
    observed span."""
    values = [
        float(v)
        for v in relation.column(attribute)
        if not is_missing(v)
    ]
    if not values:
        return 1.0
    span = max(values) - min(values)
    if span <= 0:
        return 1.0
    if relation.attribute(attribute).type is AttributeType.INTEGER:
        return max(1.0, span / 20)
    return span / 20
