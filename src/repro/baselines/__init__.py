"""Comparator imputers and the metadata substrates they consume."""

from repro.baselines.base import BaseImputer
from repro.baselines.cfd import (
    CFD,
    PatternTuple,
    WILDCARD,
    discover_constant_cfds,
    make_cfd,
)
from repro.baselines.dc import (
    DenialConstraint,
    Operator,
    Predicate,
    discover_dcs,
    fd_as_dc,
)
from repro.baselines.derand import DerandImputer, RandomizedImputer
from repro.baselines.holoclean_lite import HolocleanLiteImputer
from repro.baselines.knn import GreyKNNImputer
from repro.baselines.mean_mode import MeanModeImputer

__all__ = [
    "BaseImputer",
    "CFD",
    "DenialConstraint",
    "DerandImputer",
    "GreyKNNImputer",
    "HolocleanLiteImputer",
    "MeanModeImputer",
    "Operator",
    "RandomizedImputer",
    "PatternTuple",
    "Predicate",
    "WILDCARD",
    "discover_constant_cfds",
    "discover_dcs",
    "fd_as_dc",
    "make_cfd",
]
