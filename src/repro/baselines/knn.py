"""Grey-based k-nearest-neighbour imputation (Huang & Lee, 2004).

The paper's kNN comparator.  Instead of a Euclidean metric, instances are
compared with *grey relational analysis*: per attribute the grey
relational coefficient

    GRC_k(t, t_j) = (d_min + zeta * d_max) / (d_k(t, t_j) + zeta * d_max)

(with ``d_min``/``d_max`` the extreme attribute distances over the whole
instance and ``zeta`` the distinguishing coefficient, canonically 0.5),
and the *grey relational grade* is the mean coefficient over the
attributes both tuples have present.  The ``k`` complete-on-the-target
tuples with the highest grade vote: numeric targets get the grade-
weighted mean, categorical ones the grade-weighted mode.

Distances are normalized per attribute (min-max for numerics, edit
distance over the pair for strings) so mixed-type datasets work, even
though the original method targets numeric data — the paper only runs
kNN on the all-numeric Glass dataset.
"""

from __future__ import annotations

from repro.baselines.base import BaseImputer
from repro.core.report import ImputationReport
from repro.dataset.attribute import AttributeType
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.distance.levenshtein import levenshtein
from repro.exceptions import ImputationError


class GreyKNNImputer(BaseImputer):
    """kNN imputer with grey relational grade similarity.

    Parameters
    ----------
    k:
        Neighbourhood size (default 5, the usual choice in the source
        paper's experiments).
    zeta:
        Distinguishing coefficient of the grey relational coefficient,
        in (0, 1]; canonically 0.5.
    """

    name = "knn"

    def __init__(self, k: int = 5, zeta: float = 0.5) -> None:
        if k < 1:
            raise ImputationError("k must be >= 1")
        if not 0 < zeta <= 1:
            raise ImputationError("zeta must be in (0, 1]")
        self.k = k
        self.zeta = zeta

    def _impute_cells(
        self, working: Relation, report: ImputationReport
    ) -> None:
        snapshot = working.copy()  # impute from original values only
        ranges = _attribute_ranges(snapshot)
        for row, attribute in snapshot.missing_cells():
            self._check_budget()
            neighbours = self._rank_neighbours(
                snapshot, ranges, row, attribute
            )
            if not neighbours:
                self._record_skipped(report, row, attribute)
                continue
            top = neighbours[: self.k]
            value, source = self._vote(snapshot, top, attribute)
            working.set_value(row, attribute, value)
            self._record_imputed(
                report,
                row,
                attribute,
                working.value(row, attribute),
                source_row=source,
                distance=1.0 - top[0][0],
            )

    # ------------------------------------------------------------------
    def _rank_neighbours(
        self,
        snapshot: Relation,
        ranges: dict[str, float],
        row: int,
        attribute: str,
    ) -> list[tuple[float, int]]:
        """``(grade, row)`` of donors, best grade first."""
        grades: list[tuple[float, int]] = []
        for other in range(snapshot.n_tuples):
            if other == row:
                continue
            if is_missing(snapshot.value(other, attribute)):
                continue
            grade = self._grade(snapshot, ranges, row, other, attribute)
            if grade is not None:
                grades.append((grade, other))
        grades.sort(key=lambda item: (-item[0], item[1]))
        return grades

    def _grade(
        self,
        snapshot: Relation,
        ranges: dict[str, float],
        row: int,
        other: int,
        target: str,
    ) -> float | None:
        coefficients: list[float] = []
        for attr in snapshot.attributes:
            if attr.name == target:
                continue
            value_a = snapshot.value(row, attr.name)
            value_b = snapshot.value(other, attr.name)
            if is_missing(value_a) or is_missing(value_b):
                continue
            distance = _normalized_distance(
                attr.type, value_a, value_b, ranges[attr.name]
            )
            # d_min = 0 and d_max = 1 after normalization.
            coefficients.append(self.zeta / (distance + self.zeta))
        if not coefficients:
            return None
        return sum(coefficients) / len(coefficients)

    def _vote(
        self,
        snapshot: Relation,
        neighbours: list[tuple[float, int]],
        attribute: str,
    ) -> tuple[object, int]:
        attr_type = snapshot.attribute(attribute).type
        if attr_type.is_numeric:
            total_weight = sum(grade for grade, _ in neighbours)
            weighted = sum(
                grade * float(snapshot.value(row, attribute))
                for grade, row in neighbours
            )
            mean = weighted / total_weight
            if attr_type is AttributeType.INTEGER:
                return round(mean), neighbours[0][1]
            return mean, neighbours[0][1]
        votes: dict[object, float] = {}
        best_row: dict[object, int] = {}
        for grade, row in neighbours:
            value = snapshot.value(row, attribute)
            votes[value] = votes.get(value, 0.0) + grade
            best_row.setdefault(value, row)
        winner = max(votes.items(), key=lambda item: (item[1], str(item[0])))
        return winner[0], best_row[winner[0]]


def _attribute_ranges(relation: Relation) -> dict[str, float]:
    """Per-attribute normalization denominators (numeric span or max
    string length)."""
    ranges: dict[str, float] = {}
    for attr in relation.attributes:
        values = [
            value
            for value in relation.column(attr.name)
            if not is_missing(value)
        ]
        if not values:
            ranges[attr.name] = 1.0
        elif attr.type.is_numeric:
            span = float(max(values)) - float(min(values))
            ranges[attr.name] = span if span > 0 else 1.0
        elif attr.type is AttributeType.BOOLEAN:
            ranges[attr.name] = 1.0
        else:
            longest = max(len(str(value)) for value in values)
            ranges[attr.name] = float(longest) if longest else 1.0
    return ranges


def _normalized_distance(
    attr_type: AttributeType, value_a: object, value_b: object, span: float
) -> float:
    if attr_type.is_numeric:
        return min(1.0, abs(float(value_a) - float(value_b)) / span)  # type: ignore[arg-type]
    if attr_type is AttributeType.BOOLEAN:
        return 0.0 if bool(value_a) == bool(value_b) else 1.0
    text_a, text_b = str(value_a), str(value_b)
    longest = max(len(text_a), len(text_b), 1)
    return min(1.0, levenshtein(text_a, text_b) / longest)
