"""Common interface of all imputers (RENUVER and the baselines).

Every approach consumes a relation with missing cells and returns an
:class:`~repro.core.renuver.ImputationResult` — the imputed relation plus
a per-cell report — so the evaluation harness treats them uniformly, the
way the paper's comparative evaluation (Section 6.3) does.
"""

from __future__ import annotations

import abc

from repro.core.renuver import ImputationResult
from repro.core.report import CellOutcome, ImputationReport, OutcomeStatus
from repro.dataset.relation import Relation
from repro.utils.timer import Timer


class BaseImputer(abc.ABC):
    """Abstract imputer: subclasses implement :meth:`_impute_cells`."""

    #: Human-readable approach name, used in benchmark tables.
    name: str = "imputer"

    #: Optional per-run wall-clock budget; exceeding it raises
    #: :class:`~repro.exceptions.BudgetExceededError` mid-run (the
    #: paper's stress tests kill runs at 48 hours).  Set it on the
    #: instance before calling :meth:`impute`.
    time_budget_seconds: float | None = None

    def impute(
        self, relation: Relation, *, inplace: bool = False
    ) -> ImputationResult:
        """Impute all missing cells; timing and reporting are shared."""
        working = relation if inplace else relation.copy()
        report = ImputationReport()
        timer = Timer(self.time_budget_seconds)
        self._timer = timer
        timer.start()
        try:
            self._impute_cells(working, report)
        finally:
            report.elapsed_seconds = timer.stop()
            self._timer = None
        return ImputationResult(working, report)

    def _check_budget(self) -> None:
        """For subclass cell loops: abort when the budget is exhausted."""
        timer = getattr(self, "_timer", None)
        if timer is not None:
            timer.check_budget(self.name)

    @abc.abstractmethod
    def _impute_cells(
        self, working: Relation, report: ImputationReport
    ) -> None:
        """Fill missing cells of ``working`` in place, recording outcomes."""

    # Helpers shared by the concrete baselines -------------------------
    @staticmethod
    def _record_imputed(
        report: ImputationReport,
        row: int,
        attribute: str,
        value: object,
        *,
        source_row: int | None = None,
        distance: float | None = None,
    ) -> None:
        report.add(
            CellOutcome(
                row,
                attribute,
                OutcomeStatus.IMPUTED,
                value=value,
                source_row=source_row,
                distance=distance,
            )
        )

    @staticmethod
    def _record_skipped(
        report: ImputationReport,
        row: int,
        attribute: str,
        status: OutcomeStatus = OutcomeStatus.NO_CANDIDATES,
    ) -> None:
        report.add(CellOutcome(row, attribute, status))
