"""Denial constraints — the metadata HoloClean consumes.

A denial constraint (DC) forbids a conjunction of predicates over a tuple
pair: ``not (t1.A = t2.A and t1.B != t2.B)`` is the DC form of the FD
``A -> B``.  HoloClean uses DCs only as integrity features, so a compact
predicate language is enough here: same-attribute comparisons with
``=, !=, <, >`` (the operators used by the FASTDC/Hydra discovery papers
the RENUVER evaluation cites for its DC sets).

:func:`discover_dcs` provides the naive discovery pass standing in for
Hydra: it enumerates two-predicate DCs that hold on the instance and are
non-trivial, which matches the *scale* of the paper's DC sets (9 DCs for
Restaurant vs 1961 RFDs).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Iterable

from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.exceptions import RFDValidationError


class Operator(enum.Enum):
    """Comparison operator of a DC predicate."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    GT = ">"

    def evaluate(self, left: Any, right: Any) -> bool:
        """Apply the operator; missing operands make every predicate
        false (a pair with missing values cannot witness a violation)."""
        if is_missing(left) or is_missing(right):
            return False
        if self is Operator.EQ:
            return left == right
        if self is Operator.NEQ:
            return left != right
        if self is Operator.LT:
            return left < right
        return left > right


@dataclass(frozen=True)
class Predicate:
    """``t1.attribute <op> t2.attribute`` over a tuple pair."""

    attribute: str
    operator: Operator

    def holds(self, relation: Relation, row_a: int, row_b: int) -> bool:
        """Evaluate the predicate on a concrete pair."""
        return self.operator.evaluate(
            relation.value(row_a, self.attribute),
            relation.value(row_b, self.attribute),
        )

    def __str__(self) -> str:
        return f"t1.{self.attribute} {self.operator.value} t2.{self.attribute}"


@dataclass(frozen=True)
class DenialConstraint:
    """``not (p1 and p2 and ...)`` over every ordered tuple pair."""

    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise RFDValidationError("a DC needs at least one predicate")
        seen = set()
        for predicate in self.predicates:
            key = (predicate.attribute, predicate.operator)
            if key in seen:
                raise RFDValidationError(f"duplicate predicate {predicate}")
            seen.add(key)

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes the DC mentions."""
        return tuple(dict.fromkeys(p.attribute for p in self.predicates))

    def violated_by_pair(
        self, relation: Relation, row_a: int, row_b: int
    ) -> bool:
        """Whether the pair satisfies every predicate (hence violates)."""
        return all(
            predicate.holds(relation, row_a, row_b)
            for predicate in self.predicates
        )

    def violations(
        self, relation: Relation, *, limit: int | None = None
    ) -> list[tuple[int, int]]:
        """Violating (unordered) pairs, up to ``limit``."""
        found: list[tuple[int, int]] = []
        n = relation.n_tuples
        for row_a in range(n):
            for row_b in range(n):
                if row_a == row_b:
                    continue
                if self.violated_by_pair(relation, row_a, row_b):
                    pair = (min(row_a, row_b), max(row_a, row_b))
                    if pair not in found:
                        found.append(pair)
                        if limit is not None and len(found) >= limit:
                            return found
        return found

    def holds(self, relation: Relation) -> bool:
        """Whether no pair violates the constraint."""
        return not self.violations(relation, limit=1)

    def violations_with_row(
        self, relation: Relation, row: int
    ) -> int:
        """Number of tuples forming a violating pair with ``row`` — the
        HoloClean feature for a tentative cell assignment."""
        count = 0
        for other in range(relation.n_tuples):
            if other == row:
                continue
            if self.violated_by_pair(relation, row, other):
                count += 1
            elif self.violated_by_pair(relation, other, row):
                count += 1
        return count

    def __str__(self) -> str:
        body = " and ".join(str(p) for p in self.predicates)
        return f"not({body})"


def fd_as_dc(lhs: Iterable[str], rhs: str) -> DenialConstraint:
    """The DC encoding of a crisp FD ``lhs -> rhs``."""
    predicates = tuple(
        Predicate(attribute, Operator.EQ) for attribute in lhs
    ) + (Predicate(rhs, Operator.NEQ),)
    return DenialConstraint(predicates)


def discover_dcs(
    relation: Relation,
    *,
    max_lhs: int = 2,
    min_evidence: int = 2,
) -> list[DenialConstraint]:
    """Naive FD-shaped DC discovery (stand-in for Hydra).

    Emits ``not(t1.X = t2.X ... and t1.B != t2.B)`` constraints that hold
    on the instance, requiring at least ``min_evidence`` pairs agreeing
    on the LHS so vacuous constraints are skipped.  Minimality: an FD-DC
    is only emitted if no subset of its LHS already holds.
    """
    names = list(relation.attribute_names)
    groups = {name: _equality_groups(relation, name) for name in names}
    held: list[tuple[frozenset[str], str]] = []
    results: list[DenialConstraint] = []
    for rhs in names:
        for size in range(1, max_lhs + 1):
            for lhs in itertools.combinations(
                (n for n in names if n != rhs), size
            ):
                lhs_set = frozenset(lhs)
                if any(
                    prev_rhs == rhs and prev_lhs <= lhs_set
                    for prev_lhs, prev_rhs in held
                ):
                    continue  # a smaller LHS already determined rhs
                ok, evidence = _fd_holds(relation, groups, lhs, rhs)
                if ok and evidence >= min_evidence:
                    held.append((lhs_set, rhs))
                    results.append(fd_as_dc(lhs, rhs))
    return results


def _equality_groups(
    relation: Relation, attribute: str
) -> dict[Any, list[int]]:
    grouped: dict[Any, list[int]] = {}
    for row in range(relation.n_tuples):
        value = relation.value(row, attribute)
        if is_missing(value):
            continue
        grouped.setdefault(value, []).append(row)
    return grouped


def _fd_holds(
    relation: Relation,
    groups: dict[str, dict[Any, list[int]]],
    lhs: tuple[str, ...],
    rhs: str,
) -> tuple[bool, int]:
    """Check a crisp FD by partition refinement; returns (holds,
    #agreeing pairs with both RHS values present)."""
    partitions: dict[tuple, list[int]] = {}
    for row in range(relation.n_tuples):
        key = []
        skip = False
        for attribute in lhs:
            value = relation.value(row, attribute)
            if is_missing(value):
                skip = True
                break
            key.append(value)
        if skip:
            continue
        partitions.setdefault(tuple(key), []).append(row)
    evidence = 0
    for rows in partitions.values():
        if len(rows) < 2:
            continue
        rhs_values = {
            relation.value(row, rhs)
            for row in rows
            if not is_missing(relation.value(row, rhs))
        }
        present = [
            row for row in rows
            if not is_missing(relation.value(row, rhs))
        ]
        if len(rhs_values) > 1:
            return False, 0
        if len(present) >= 2:
            evidence += len(present) * (len(present) - 1) // 2
    return True, evidence
