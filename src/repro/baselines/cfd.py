"""Conditional functional dependencies (Bohannon et al., ICDE 2007).

The paper's related work discusses CFDs as the first RFD flavour used
for cleaning: an embedded FD plus a *pattern tableau* restricting where
it applies and pinning constants.  Bohannon et al. detect violations
with SQL; this module gives the same capability natively so CFD-based
integrity checking can be compared against RFDc verification.

A CFD is ``(X -> A, tp)`` where the pattern tuple ``tp`` assigns each
attribute of ``X`` and ``A`` either a constant or ``_`` (wildcard):

* ``([City = _ ] -> [AreaCode = _])``  — plain FD,
* ``([City = 'LA'] -> [AreaCode = '213'])``  — constant rule,
* ``([City = _ ] -> [AreaCode = '213'])``  — mixed.

Violation semantics: single-tuple patterns (constant RHS) are violated
by one tuple matching the LHS constants but differing on the RHS;
variable patterns are violated by tuple pairs agreeing on ``X`` (within
the constants) but differing on ``A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.exceptions import RFDValidationError

WILDCARD = "_"


@dataclass(frozen=True)
class PatternTuple:
    """The tableau row: attribute -> constant or ``_`` (wildcard)."""

    lhs: tuple[tuple[str, Any], ...]
    rhs_attribute: str
    rhs_value: Any  # constant or WILDCARD

    def __post_init__(self) -> None:
        if not self.lhs:
            raise RFDValidationError("a CFD needs at least one LHS entry")
        names = [name for name, _ in self.lhs]
        if len(set(names)) != len(names):
            raise RFDValidationError(f"duplicate LHS attributes {names}")
        if self.rhs_attribute in names:
            raise RFDValidationError(
                f"RHS {self.rhs_attribute!r} also on the LHS"
            )

    @property
    def lhs_attributes(self) -> tuple[str, ...]:
        """The embedded FD's LHS attribute names."""
        return tuple(name for name, _ in self.lhs)

    def lhs_matches(self, row: Mapping[str, Any]) -> bool:
        """Whether a tuple matches the LHS constants (wildcards always
        match present values; missing values never match)."""
        for name, pattern_value in self.lhs:
            value = row[name]
            if is_missing(value):
                return False
            if pattern_value != WILDCARD and value != pattern_value:
                return False
        return True


@dataclass(frozen=True)
class CFD:
    """A conditional functional dependency with one tableau row.

    Multi-row tableaux are modelled as several CFDs sharing the embedded
    FD — equivalent, and simpler to reason about.
    """

    pattern: PatternTuple

    @property
    def is_constant(self) -> bool:
        """Whether the RHS pattern pins a constant."""
        return self.pattern.rhs_value != WILDCARD

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes the CFD mentions."""
        return self.pattern.lhs_attributes + (self.pattern.rhs_attribute,)

    def violations(
        self, relation: Relation, *, limit: int | None = None
    ) -> list[tuple[int, ...]]:
        """Violating tuples (constant CFD) or pairs (variable CFD)."""
        if self.is_constant:
            return self._constant_violations(relation, limit)
        return self._variable_violations(relation, limit)

    def holds(self, relation: Relation) -> bool:
        """Whether the instance satisfies the CFD."""
        return not self.violations(relation, limit=1)

    # ------------------------------------------------------------------
    def _constant_violations(
        self, relation: Relation, limit: int | None
    ) -> list[tuple[int, ...]]:
        found: list[tuple[int, ...]] = []
        rhs = self.pattern.rhs_attribute
        for row in range(relation.n_tuples):
            view = relation.row(row)
            if not self.pattern.lhs_matches(view):
                continue
            value = view[rhs]
            if is_missing(value):
                continue
            if value != self.pattern.rhs_value:
                found.append((row,))
                if limit is not None and len(found) >= limit:
                    break
        return found

    def _variable_violations(
        self, relation: Relation, limit: int | None
    ) -> list[tuple[int, ...]]:
        found: list[tuple[int, ...]] = []
        rhs = self.pattern.rhs_attribute
        lhs_names = self.pattern.lhs_attributes
        groups: dict[tuple, list[int]] = {}
        for row in range(relation.n_tuples):
            view = relation.row(row)
            if not self.pattern.lhs_matches(view):
                continue
            if is_missing(view[rhs]):
                continue
            key = tuple(view[name] for name in lhs_names)
            groups.setdefault(key, []).append(row)
        for rows in groups.values():
            for position, row_a in enumerate(rows):
                for row_b in rows[position + 1:]:
                    if relation.value(row_a, rhs) != relation.value(
                        row_b, rhs
                    ):
                        found.append((row_a, row_b))
                        if limit is not None and len(found) >= limit:
                            return found
        return found

    def __str__(self) -> str:
        lhs = ", ".join(
            f"{name}={'_' if value == WILDCARD else repr(value)}"
            for name, value in self.pattern.lhs
        )
        rhs_value = (
            "_" if self.pattern.rhs_value == WILDCARD
            else repr(self.pattern.rhs_value)
        )
        return (
            f"([{lhs}] -> [{self.pattern.rhs_attribute}={rhs_value}])"
        )


def make_cfd(
    lhs: Mapping[str, Any] | Iterable[tuple[str, Any]],
    rhs: tuple[str, Any],
) -> CFD:
    """Convenience constructor.

    ``make_cfd({"City": "LA"}, ("AreaCode", "213"))`` pins constants;
    use :data:`WILDCARD` (``"_"``) for variable positions.
    """
    lhs_pairs = tuple(
        lhs.items() if isinstance(lhs, Mapping) else lhs
    )
    return CFD(PatternTuple(lhs_pairs, rhs[0], rhs[1]))


def discover_constant_cfds(
    relation: Relation,
    *,
    min_support: int = 3,
    max_lhs: int = 1,
) -> list[CFD]:
    """Mine high-support constant CFDs (naive CFDMiner-style pass).

    Emits ``([X = c] -> [A = v])`` whenever at least ``min_support``
    tuples carry ``X = c`` and *all* of them (with a present RHS) agree
    on ``A = v``.  Single-attribute LHS by default, matching the cheap
    rules cleaning pipelines actually deploy.
    """
    if min_support < 2:
        raise RFDValidationError("min_support must be >= 2")
    if max_lhs != 1:
        raise RFDValidationError(
            "only single-attribute LHS mining is implemented"
        )
    cfds: list[CFD] = []
    names = relation.attribute_names
    for lhs_name in names:
        groups: dict[Any, list[int]] = {}
        for row in range(relation.n_tuples):
            value = relation.value(row, lhs_name)
            if is_missing(value):
                continue
            groups.setdefault(value, []).append(row)
        for constant, rows in groups.items():
            if len(rows) < min_support:
                continue
            for rhs_name in names:
                if rhs_name == lhs_name:
                    continue
                values = {
                    relation.value(row, rhs_name)
                    for row in rows
                    if not is_missing(relation.value(row, rhs_name))
                }
                if len(values) == 1:
                    cfds.append(
                        make_cfd(
                            {lhs_name: constant},
                            (rhs_name, values.pop()),
                        )
                    )
    return cfds
