"""Derand — differential-dependency guided imputation (Song et al., TKDE
2020, "Enriching data imputation under similarity rule constraints").

The original casts "maximize the number of imputed cells subject to
similarity-rule consistency" as an integer program, relaxes it, rounds it
randomly and derandomizes by conditional expectations.  This reproduction
keeps that structure at laptop scale:

1. *Candidate generation*: for every missing cell, the distinct values
   offered by tuples matching the LHS of any differential dependency
   (DD) whose RHS is the missing attribute.  A DD with distance bounds on
   both sides is structurally an RFDc, so this module consumes
   :class:`~repro.rfd.rfd.RFD` objects directly — the paper runs Derand
   and RENUVER on the *same* dependency sets.
2. *Derandomized rounding*: cells are processed in order; each candidate
   value is scored by its conditional expected number of violations —
   definite violations against observed/already-fixed cells plus
   expected violations against still-open cells, averaging over their
   candidate sets (the conditional-expectation step of the original).
   The candidate minimizing the expectation is chosen; a cell is left
   blank only when every candidate is definitely inconsistent.

Differences from the original (documented per DESIGN.md): the LP bound
is not computed (only used in the paper for approximation guarantees),
and expectation terms are restricted to pairs involving the target tuple,
which is where an assignment can create violations.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.base import BaseImputer
from repro.core.report import ImputationReport, OutcomeStatus
from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.distance.pattern import PatternCalculator
from repro.exceptions import ImputationError
from repro.rfd.rfd import RFD


class DerandImputer(BaseImputer):
    """Derandomized DD-guided imputer.

    Parameters
    ----------
    dds:
        The differential dependencies (as RFDs) holding on the data.
    max_candidates:
        Optional per-cell cap on candidate values (largest support
        first) to bound the conditional-expectation work.
    """

    name = "derand"

    def __init__(
        self,
        dds: list[RFD],
        *,
        max_candidates: int | None = 25,
    ) -> None:
        if not dds:
            raise ImputationError("Derand needs at least one dependency")
        if max_candidates is not None and max_candidates < 1:
            raise ImputationError("max_candidates must be >= 1 when given")
        self.dds = list(dds)
        self.max_candidates = max_candidates

    def _impute_cells(
        self, working: Relation, report: ImputationReport
    ) -> None:
        calculator = PatternCalculator(working)
        cells = working.missing_cells()
        domains: dict[tuple[int, str], list[_Candidate]] = {}
        for cell in cells:
            domains[cell] = self._candidates(calculator, *cell)
        # Pre-group dependencies by mentioned attribute and cache the
        # union of their attributes: the expectation loop computes one
        # pattern per partner tuple instead of one per (dd, partner).
        self._by_attribute: dict[str, list[RFD]] = {}
        self._union_attrs: dict[str, tuple[str, ...]] = {}
        for attribute in working.attribute_names:
            relevant = [
                dd for dd in self.dds if attribute in dd.attributes
            ]
            self._by_attribute[attribute] = relevant
            self._union_attrs[attribute] = tuple(
                sorted({
                    name for dd in relevant for name in dd.attributes
                })
            )

        for cell in cells:
            self._check_budget()
            row, attribute = cell
            candidates = domains[cell]
            if not candidates:
                self._record_skipped(report, row, attribute)
                continue
            best: _Candidate | None = None
            best_score: tuple[float, float] | None = None
            for candidate in candidates:
                definite, expected = self._violation_expectation(
                    calculator, domains, cell, candidate.value
                )
                if definite > 0:
                    continue
                score = (expected, candidate.rank)
                if best_score is None or score < best_score:
                    best_score = score
                    best = candidate
            if best is None:
                self._record_skipped(
                    report, row, attribute, OutcomeStatus.ALL_REJECTED
                )
                continue
            working.set_value(row, attribute, best.value)
            domains[cell] = []  # cell is now fixed
            self._record_imputed(
                report,
                row,
                attribute,
                working.value(row, attribute),
                source_row=best.source_row,
                distance=best_score[0] if best_score else None,
            )

    # ------------------------------------------------------------------
    def _candidates(
        self,
        calculator: PatternCalculator,
        row: int,
        attribute: str,
    ) -> list["_Candidate"]:
        """Distinct values from DD-matching donor tuples, by support."""
        relation = calculator.relation
        relevant = [
            dd for dd in self.dds if dd.rhs_attribute == attribute
        ]
        if not relevant:
            return []
        needed = tuple(
            sorted({n for dd in relevant for n in dd.lhs_attributes})
        )
        support: dict[Any, int] = {}
        first_row: dict[Any, int] = {}
        for other in range(relation.n_tuples):
            if other == row:
                continue
            value = relation.value(other, attribute)
            if is_missing(value):
                continue
            pattern = calculator.pattern(row, other, needed)
            if any(dd.lhs_satisfied(pattern) for dd in relevant):
                support[value] = support.get(value, 0) + 1
                first_row.setdefault(value, other)
        ranked = sorted(
            support.items(), key=lambda item: (-item[1], str(item[0]))
        )
        if self.max_candidates is not None:
            ranked = ranked[: self.max_candidates]
        return [
            _Candidate(value, first_row[value], rank)
            for rank, (value, _) in enumerate(ranked)
        ]

    def _violation_expectation(
        self,
        calculator: PatternCalculator,
        domains: dict[tuple[int, str], list["_Candidate"]],
        cell: tuple[int, str],
        value: Any,
    ) -> tuple[int, float]:
        """(definite, expected) violations if ``cell`` takes ``value``.

        Definite violations involve fully comparable pairs; expected
        violations average over the candidate domains of still-open
        cells on the dependency's attributes.
        """
        row, attribute = cell
        relation = calculator.relation
        relevant = self._by_attribute[attribute]
        union = self._union_attrs[attribute]
        relation.set_value(row, attribute, value)
        definite = 0
        expected = 0.0
        try:
            for other in range(relation.n_tuples):
                if other == row:
                    continue
                pattern = calculator.pattern(row, other, union)
                for dd in relevant:
                    if dd.violated_by(pattern):
                        definite += 1
                        continue
                    expected += self._open_cell_risk(
                        calculator, domains, dd, row, other, pattern
                    )
        finally:
            relation.set_value(row, attribute, MISSING)
        return definite, expected

    def _open_cell_risk(
        self,
        calculator: PatternCalculator,
        domains: dict[tuple[int, str], list["_Candidate"]],
        dd: RFD,
        row: int,
        other: int,
        pattern,
    ) -> float:
        """Probability that filling ``other``'s open RHS cell uniformly
        from its domain violates ``dd`` against ``row``.

        Only the single-open-cell case is estimated (RHS of ``dd`` open
        on the partner while the LHS already matches); deeper joint
        expectations contribute little and cost a lot.
        """
        relation = calculator.relation
        rhs = dd.rhs_attribute
        if not dd.lhs_satisfied(pattern):
            return 0.0
        if not pattern.is_missing_on(rhs):
            return 0.0
        if not is_missing(relation.value(other, rhs)):
            return 0.0
        domain = domains.get((other, rhs), [])
        if not domain:
            return 0.0
        own_value = relation.value(row, rhs)
        if is_missing(own_value):
            return 0.0
        bad = 0
        for candidate in domain:
            distance = calculator.value_distance(
                rhs, own_value, candidate.value
            )
            if not dd.rhs.is_satisfied_by(distance):
                bad += 1
        return bad / len(domain)


class RandomizedImputer(DerandImputer):
    """The randomized algorithm Derand derandomizes (Song et al. 2020).

    Instead of scoring candidates by conditional expectation, each cell
    draws uniformly from its candidate set; draws that create a definite
    violation are rejected (up to ``attempts`` redraws), after which the
    cell is left blank.  Seeded, so runs are reproducible; in
    expectation its consistency matches Derand's bound, with higher
    variance — which is exactly why the paper recommends Derand.
    """

    name = "derand-randomized"

    def __init__(
        self,
        dds: list[RFD],
        *,
        max_candidates: int | None = 25,
        attempts: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(dds, max_candidates=max_candidates)
        if attempts < 1:
            raise ImputationError("attempts must be >= 1")
        self.attempts = attempts
        self.seed = seed

    def _impute_cells(
        self, working, report
    ) -> None:
        from repro.core.report import OutcomeStatus
        from repro.utils.rng import spawn_rng

        calculator = PatternCalculator(working)
        cells = working.missing_cells()
        domains = {
            cell: self._candidates(calculator, *cell) for cell in cells
        }
        self._by_attribute = {}
        self._union_attrs = {}
        for attribute in working.attribute_names:
            relevant = [
                dd for dd in self.dds if attribute in dd.attributes
            ]
            self._by_attribute[attribute] = relevant
            self._union_attrs[attribute] = tuple(
                sorted({
                    name for dd in relevant for name in dd.attributes
                })
            )
        rng = spawn_rng(self.seed, "randomized-derand", working.name)
        for cell in cells:
            self._check_budget()
            row, attribute = cell
            candidates = list(domains[cell])
            if not candidates:
                self._record_skipped(report, row, attribute)
                continue
            chosen = None
            for _ in range(min(self.attempts, len(candidates))):
                candidate = rng.choice(candidates)
                definite, _ = self._violation_expectation(
                    calculator, domains, cell, candidate.value
                )
                if definite == 0:
                    chosen = candidate
                    break
                candidates.remove(candidate)
                if not candidates:
                    break
            if chosen is None:
                self._record_skipped(
                    report, row, attribute, OutcomeStatus.ALL_REJECTED
                )
                continue
            working.set_value(row, attribute, chosen.value)
            domains[cell] = []
            self._record_imputed(
                report,
                row,
                attribute,
                working.value(row, attribute),
                source_row=chosen.source_row,
            )


class _Candidate:
    """One candidate value with its donor row and support rank."""

    __slots__ = ("value", "source_row", "rank")

    def __init__(self, value: Any, source_row: int, rank: int) -> None:
        self.value = value
        self.source_row = source_row
        self.rank = rank
