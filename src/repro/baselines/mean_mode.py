"""Mean/mode imputation — the trivial reference baseline.

Not part of the paper's comparison, but a useful floor in the examples
and benchmark tables: numeric attributes get the column mean, everything
else the column mode (most frequent value, ties broken by value order for
determinism).
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import BaseImputer
from repro.core.report import ImputationReport
from repro.dataset.attribute import AttributeType
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation


class MeanModeImputer(BaseImputer):
    """Column mean for numeric attributes, column mode otherwise."""

    name = "mean-mode"

    def _impute_cells(
        self, working: Relation, report: ImputationReport
    ) -> None:
        fills: dict[str, object] = {}
        for attribute in working.attributes:
            values = [
                value
                for value in working.column(attribute.name)
                if not is_missing(value)
            ]
            if not values:
                continue
            if attribute.type is AttributeType.FLOAT:
                fills[attribute.name] = sum(values) / len(values)
            elif attribute.type is AttributeType.INTEGER:
                fills[attribute.name] = round(sum(values) / len(values))
            else:
                fills[attribute.name] = _mode(values)
        for row, attribute in working.missing_cells():
            if attribute not in fills:
                self._record_skipped(report, row, attribute)
                continue
            value = fills[attribute]
            working.set_value(row, attribute, value)
            self._record_imputed(report, row, attribute, value)


def _mode(values: list) -> object:
    counts = Counter(values)
    best_count = max(counts.values())
    candidates = sorted(
        (value for value, count in counts.items() if count == best_count),
        key=str,
    )
    return candidates[0]
