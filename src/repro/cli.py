"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``discover``  Discover RFDs from a CSV and write them to a text file::

    python -m repro discover data.csv --limit 6 --out rfds.txt

``impute``    Impute a CSV's missing cells with RFDs::

    python -m repro impute dirty.csv --rfds rfds.txt --out clean.csv

``evaluate``  Inject, impute and score on a clean CSV (the paper's
evaluation protocol)::

    python -m repro evaluate clean.csv --rate 0.02 --limit 6 \
        --rules rules.json

``datasets``  List or export the bundled synthetic datasets::

    python -m repro datasets --export restaurant --out restaurant.csv

``serve``     Run the long-lived imputation HTTP service
(``docs/SERVICE.md``)::

    python -m repro serve --port 8080 --artifact-dir .renuver-cache
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Sequence

from repro.core import Renuver, RenuverConfig
from repro.dataset import read_csv, write_csv
from repro.datasets import dataset_info, dataset_names, load_dataset
from repro.discovery import DiscoveryConfig, discover_rfds
from repro.evaluation import (
    inject_missing,
    load_rule_file,
    score_imputation,
)
from repro.exceptions import (
    BudgetExceededError,
    DataError,
    DiscoveryError,
    EvaluationError,
    ImputationError,
    InjectedFaultError,
    JournalError,
    PipelineError,
    ReproError,
    RFDParseError,
    RFDValidationError,
    RuleFileError,
    SchemaError,
    ServiceError,
    WorkerPoolError,
)
from repro.rfd import load_rfds, save_rfds
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    configure_logging,
    profile_table,
    write_metrics,
    write_trace,
)

#: The CLI error contract: each error family maps to a distinct nonzero
#: exit code so scripts can branch on *why* a run failed.  Checked in
#: order, most specific first (RuleFileError before its EvaluationError
#: parent; CSVFormatError is covered by DataError).
_EXIT_CODES: tuple[tuple[type, int], ...] = (
    (BudgetExceededError, 3),   # budget exhausted (partial results kept)
    (DataError, 4),             # bad input data (incl. CSVFormatError)
    (SchemaError, 4),
    (RFDParseError, 5),         # bad rule/journal artifacts
    (RFDValidationError, 5),
    (RuleFileError, 5),
    (JournalError, 5),
    (DiscoveryError, 6),        # algorithm-stage failures
    (ImputationError, 6),
    (EvaluationError, 6),
    (InjectedFaultError, 6),
    (WorkerPoolError, 7),       # supervised worker pool exhausted retries
    (ServiceError, 8),          # HTTP service cannot start or operate
    (PipelineError, 9),         # continuous-ingestion pipeline failures
)


def exit_code_for(exc: BaseException) -> int:
    """The exit code the CLI uses for ``exc`` (1 for plain ReproError)."""
    for family, code in _EXIT_CODES:
        if isinstance(exc, family):
            return code
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _setup_logging(args)
    if args.command is None:
        parser.print_help()
        return 2
    restore = _install_sigterm_handler()
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # SIGINT or SIGTERM: by the time the interrupt propagates here,
        # the driver's finally blocks have flushed the journal and the
        # supervisor has reaped its workers — exit with the
        # conventional 128+SIGINT code.
        print("interrupted; journal flushed, workers reaped",
              file=sys.stderr)
        return 130
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except FileNotFoundError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        restore()


def _install_sigterm_handler():
    """Make SIGTERM unwind like Ctrl-C so ``finally`` blocks run.

    Returns a zero-argument restore callable.  No-ops (and restores
    nothing) outside the main thread or when SIGTERM is unavailable.
    """
    def on_sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt("SIGTERM")

    try:
        previous = signal.signal(signal.SIGTERM, on_sigterm)
    except (ValueError, OSError, AttributeError):
        return lambda: None
    return lambda: signal.signal(signal.SIGTERM, previous)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RENUVER: RFD-based missing value imputation "
                    "(EDBT 2022 reproduction)",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="show full tracebacks instead of one-line errors "
             "(implies --log-level debug)",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured logging to stderr at this level",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines (implies --log-level info "
             "unless --log-level is given)",
    )
    sub = parser.add_subparsers(dest="command")

    discover = sub.add_parser(
        "discover", help="discover RFDs from a CSV file"
    )
    discover.add_argument("csv", help="input CSV (header row required)")
    discover.add_argument(
        "--limit", type=float, default=3.0,
        help="RHS threshold limit (paper: 3/6/9/12/15; default 3)",
    )
    discover.add_argument(
        "--max-lhs", type=int, default=2, help="max LHS size (default 2)"
    )
    discover.add_argument(
        "--max-per-rhs", type=int, default=None,
        help="cap RFDs kept per RHS attribute",
    )
    discover.add_argument(
        "--out", default=None, help="output RFD file (default: stdout)"
    )
    discover.set_defaults(handler=_cmd_discover)

    impute = sub.add_parser(
        "impute", help="impute a CSV's missing cells with RFDs"
    )
    impute.add_argument("csv", help="input CSV with missing cells")
    impute.add_argument(
        "--rfds", required=True, help="RFD file (one per line)"
    )
    impute.add_argument(
        "--out", default=None, help="output CSV (default: stdout)"
    )
    impute.add_argument(
        "--no-verify", action="store_true",
        help="skip IS_FAULTLESS verification (faster, less safe)",
    )
    impute.add_argument(
        "--report", action="store_true",
        help="print per-cell provenance to stderr",
    )
    impute.add_argument(
        "--engine", choices=("vectorized", "scalar"),
        default="vectorized", help="donor-scan engine",
    )
    impute.add_argument(
        "--blocking", choices=("auto", "on", "off"), default="auto",
        help="blocking-index donor retrieval: auto engages on large "
             "vectorized runs, on forces it, off keeps full scans "
             "(outcomes are bit-identical either way)",
    )
    impute.add_argument(
        "--max-group-size", type=int, default=4096, metavar="N",
        help="blocking anchor cap: probes returning more rows fall "
             "back to a full scan for that RFD (default 4096)",
    )
    impute.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="run wall-clock budget (exit 3 when exceeded)",
    )
    impute.add_argument(
        "--cell-budget", type=float, default=None, metavar="SECONDS",
        help="per-cell deadline (overruns degrade, not abort)",
    )
    impute.add_argument(
        "--fallback", choices=("raise", "skip", "mean_mode"),
        default="skip",
        help="last resort for a failed cell (default: skip)",
    )
    impute.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
        help="run-budget overrun: abort with exit 3, or keep the "
             "partial result and exit 0",
    )
    impute.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker subprocesses for the supervised parallel runtime "
             "(default 1 = sequential; outcomes are bit-identical "
             "either way; total pool failure exits 7)",
    )
    impute.add_argument(
        "--worker-timeout", type=float, default=30.0, metavar="SECONDS",
        help="heartbeat staleness after which a worker is declared "
             "hung and retried (default 30)",
    )
    impute.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a JSONL checkpoint journal as the run progresses",
    )
    impute.add_argument(
        "--resume", default=None, metavar="PATH",
        help="replay a journal from a killed run and continue "
             "(implies --journal PATH)",
    )
    _add_telemetry_flags(impute)
    impute.set_defaults(handler=_cmd_impute)

    evaluate = sub.add_parser(
        "evaluate",
        help="inject missing values into a clean CSV, impute, score",
    )
    evaluate.add_argument("csv", help="clean input CSV")
    evaluate.add_argument(
        "--rate", type=float, default=0.02,
        help="missing rate to inject (default 0.02)",
    )
    evaluate.add_argument(
        "--limit", type=float, default=3.0,
        help="discovery threshold limit (default 3)",
    )
    evaluate.add_argument(
        "--rules", default=None,
        help="JSON rule file for semantic validation",
    )
    evaluate.add_argument(
        "--seed", type=int, default=0, help="injection seed (default 0)"
    )
    _add_telemetry_flags(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    datasets = sub.add_parser(
        "datasets", help="list or export the bundled synthetic datasets"
    )
    datasets.add_argument(
        "--export", default=None, metavar="NAME",
        help="dataset to export as CSV",
    )
    datasets.add_argument(
        "--tuples", type=int, default=None,
        help="override tuple count for --export",
    )
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument(
        "--out", default=None, help="output CSV for --export"
    )
    datasets.set_defaults(handler=_cmd_datasets)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived imputation HTTP service",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks a free one (default 8080)",
    )
    serve.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="fingerprint-keyed artifact cache directory; enables "
             "warm starts that skip rediscovery",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="imputation requests admitted concurrently; excess gets "
             "429 (default 8)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64, metavar="N",
        help="live warm-start sessions held before POST /v1/sessions "
             "answers 429 (default 64)",
    )
    serve.add_argument(
        "--request-budget", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline; overruns return partial "
             "results, never 500s",
    )
    serve.add_argument(
        "--limit", type=float, default=3.0,
        help="default discovery threshold limit for requests without "
             "a pinned RFD set (default 3)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=16, metavar="N",
        help="requests queued behind the inflight permits before the "
             "queue sheds with 429 + Retry-After (default 16; 0 "
             "disables queueing entirely)",
    )
    serve.add_argument(
        "--max-queue-wait", type=float, default=1.0, metavar="SECONDS",
        help="longest a request may sit in the admission queue before "
             "it is shed (default 1.0)",
    )
    serve.add_argument(
        "--no-brownout", action="store_true",
        help="disable the overload brownout ladder (vectorized -> "
             "scalar -> cache-only); sheds still answer 429",
    )
    serve.add_argument(
        "--no-durable-sessions", action="store_true",
        help="keep warm-start sessions in memory only (no journaled "
             "session envelopes, no recovery after a crash)",
    )
    serve.set_defaults(handler=_cmd_serve)

    pipeline = sub.add_parser(
        "pipeline",
        help="continuous-ingestion pipeline: watermarked FULL/INCR "
             "runs with crash-safe resume (docs/PIPELINE.md)",
    )
    pipeline.add_argument(
        "action", choices=("run", "resume", "status"),
        help="run: execute one run over new ingest files; resume: "
             "finish a crashed run; status: print the pipeline state",
    )
    pipeline.add_argument(
        "--root", required=True, metavar="DIR",
        help="pipeline root (state, lease, store, runs, artifacts)",
    )
    pipeline.add_argument(
        "--ingest", default=None, metavar="DIR",
        help="append-only ingest directory of *.csv batches "
             "(required for run and resume)",
    )
    pipeline.add_argument(
        "--mode", choices=("auto", "full", "incr"), default="auto",
        help="run mode; incr degrades to full when its prerequisites "
             "are broken (default auto)",
    )
    pipeline.add_argument(
        "--limit", type=float, default=3.0,
        help="discovery threshold limit (default 3)",
    )
    pipeline.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker subprocesses for the imputation stage (default 1)",
    )
    pipeline.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="lease heartbeat TTL; a lease staler than this is taken "
             "over (default 30)",
    )
    pipeline.add_argument(
        "--owner", default=None, metavar="NAME",
        help="lease owner label (default: pid-<pid>)",
    )
    pipeline.set_defaults(handler=_cmd_pipeline)

    return parser


# ----------------------------------------------------------------------
# Telemetry plumbing
# ----------------------------------------------------------------------
def _add_telemetry_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the run's span tree as a JSONL trace file",
    )
    command.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write run metrics in Prometheus text exposition format",
    )
    command.add_argument(
        "--profile", action="store_true",
        help="print a per-phase time breakdown to stderr",
    )


def _setup_logging(args: argparse.Namespace) -> None:
    """Map ``--log-level``/``--log-json``/``--debug`` onto the stdlib
    logging tree.  Logging stays untouched when none are given."""
    level = args.log_level
    if level is None and args.debug:
        level = "debug"
    if level is None and args.log_json:
        level = "info"
    if level is not None:
        configure_logging(level, json_format=args.log_json)


def _telemetry_for(args: argparse.Namespace) -> Telemetry:
    """A live telemetry spine when any export flag asks for one."""
    if args.trace or args.metrics or args.profile:
        return Telemetry()
    return NULL_TELEMETRY


def _emit_telemetry(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Write the requested exports; call after the run settles (a
    partial trace from a budget-aborted run is still written)."""
    if not telemetry.enabled:
        return
    if args.trace:
        write_trace(telemetry.tracer, args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        write_metrics(telemetry.metrics, args.metrics)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    if args.profile:
        print(profile_table(telemetry.tracer), file=sys.stderr)


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_discover(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    result = discover_rfds(
        relation,
        DiscoveryConfig(
            threshold_limit=args.limit,
            max_lhs_size=args.max_lhs,
            max_per_rhs=args.max_per_rhs,
        ),
    )
    print(result.summary(), file=sys.stderr)
    if args.out:
        save_rfds(result.all_rfds, args.out)
        print(f"wrote {len(result.all_rfds)} RFDs to {args.out}",
              file=sys.stderr)
    else:
        for rfd in result.all_rfds:
            print(rfd)
    return 0


def _cmd_impute(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    rfds = load_rfds(args.rfds)
    telemetry = _telemetry_for(args)
    engine = Renuver(
        rfds,
        RenuverConfig(
            verify=not args.no_verify,
            engine=args.engine,
            blocking=args.blocking,
            max_group_size=args.max_group_size,
            time_budget_seconds=args.budget,
            cell_time_budget_seconds=args.cell_budget,
            fallback=args.fallback,
            on_budget=args.on_budget,
            workers=args.workers,
            worker_timeout_seconds=args.worker_timeout,
        ),
        telemetry=telemetry,
    )
    try:
        result = engine.impute(
            relation, journal=args.journal, resume_from=args.resume
        )
    except BudgetExceededError as exc:
        # Preserve whatever the run managed before the budget tripped,
        # then surface the error (exit 3 via the error contract).
        if exc.partial_result is not None and args.out:
            write_csv(exc.partial_result.relation, args.out)
            print(f"wrote partial result to {args.out}", file=sys.stderr)
        _emit_telemetry(args, telemetry)
        raise
    _emit_telemetry(args, telemetry)
    print(result.report.summary(), file=sys.stderr)
    if args.report:
        for outcome in result.report:
            print(f"  {outcome}", file=sys.stderr)
    if args.out:
        write_csv(result.relation, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        from repro.dataset import to_csv_text

        sys.stdout.write(to_csv_text(result.relation))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    validator = load_rule_file(args.rules) if args.rules else None
    telemetry = _telemetry_for(args)
    discovery = discover_rfds(
        relation, DiscoveryConfig(threshold_limit=args.limit),
        telemetry=telemetry,
    )
    print(discovery.summary(), file=sys.stderr)
    injection = inject_missing(relation, rate=args.rate, seed=args.seed)
    result = Renuver(
        discovery.all_rfds, telemetry=telemetry
    ).impute(injection.relation)
    scores = score_imputation(result.relation, injection, validator)
    _emit_telemetry(args, telemetry)
    print(f"injected {injection.count} missing cells at "
          f"{args.rate:.1%}", file=sys.stderr)
    print(scores)
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    if args.export is None:
        for name in dataset_names():
            info = dataset_info(name)
            print(f"{name:<12} {info.paper_tuples:>6} tuples x "
                  f"{info.paper_attributes} attributes")
        return 0
    relation = load_dataset(
        args.export, n_tuples=args.tuples, seed=args.seed
    )
    if args.out:
        write_csv(relation, args.out)
        print(f"wrote {relation.n_tuples} tuples to {args.out}",
              file=sys.stderr)
    else:
        from repro.dataset import to_csv_text

        sys.stdout.write(to_csv_text(relation))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, build_server

    config = ServiceConfig(
        discovery=DiscoveryConfig(threshold_limit=args.limit),
        request_budget_seconds=args.request_budget,
        max_inflight=args.max_inflight,
        max_sessions=args.max_sessions,
        max_queue_depth=args.max_queue_depth,
        max_queue_wait_seconds=args.max_queue_wait,
        brownout_enabled=not args.no_brownout,
        durable_sessions=not args.no_durable_sessions,
    )
    server = build_server(
        args.host, args.port,
        config=config,
        artifact_dir=args.artifact_dir,
    )
    # The accept loop runs in a worker thread so the main thread stays
    # free to take SIGTERM/SIGINT (raised as KeyboardInterrupt by the
    # handler installed in main()) and run the drain — calling
    # ``shutdown()`` from the serve_forever thread would deadlock.
    accept = threading.Thread(
        target=server.serve_forever, name="serve-accept"
    )
    accept.start()
    print(f"serving on http://{args.host}:{server.port}",
          file=sys.stderr, flush=True)
    try:
        while accept.is_alive():
            accept.join(timeout=0.2)
    except KeyboardInterrupt:
        # Graceful drain, then a *clean* exit: stop accepting, finish
        # every in-flight request, release the socket.
        print("draining in-flight requests", file=sys.stderr)
        server.drain()
        accept.join()
        print("drained cleanly", file=sys.stderr)
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    import json as _json

    from repro.pipeline import Pipeline, PipelineConfig

    if args.action in ("run", "resume") and not args.ingest:
        print("error: --ingest is required for run and resume",
              file=sys.stderr)
        return 2
    config = PipelineConfig(
        discovery=DiscoveryConfig(threshold_limit=args.limit),
        renuver=RenuverConfig(workers=args.workers),
        mode=args.mode,
        lease_ttl_seconds=args.lease_ttl,
        owner=args.owner,
    )
    pipeline = Pipeline(
        args.root, args.ingest or args.root, config
    )
    if args.action == "status":
        print(_json.dumps(pipeline.status(), indent=2))
        return 0
    result = pipeline.run() if args.action == "run" else pipeline.resume()
    print(result.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
