"""The staged pipeline runner: watermarked FULL/INCR imputation runs.

One :class:`Pipeline` owns a root directory::

    <root>/state.json[.prev]   run state        (repro.pipeline.state)
    <root>/pipeline.lock       single-writer lease
    <root>/store/              versioned imputed snapshots (reconcile)
    <root>/runs/<run_id>/      per-run artifacts           (runs)
    <root>/artifacts/          fingerprint-keyed RFD cache (service)

and executes runs over an append-only ingest directory in five staged
phases — ``load``, ``discover``, ``impute``, ``artifacts``,
``commit`` — each wrapped in a ``pipeline.stage`` span under one
``pipeline.run`` span.

Crash model
-----------
A run's *only* commit point is the atomic replacement of the state
envelope in the ``commit`` stage.  Everything before it — the journal,
the delta CSV, even the new store snapshot file — is reconstructible
debris: ``pipeline resume`` rebuilds the identical dirty relation from
the persisted :class:`~repro.pipeline.state.RunRecord`, replays the
journal prefix (fingerprint-checked), finishes the remaining cells and
rewrites every artifact atomically.  Because the imputation driver is
deterministic, a SIGKILL at any instant followed by ``resume`` yields a
persistent store bit-identical to an uninterrupted run's.

Mode selection
--------------
``full``  rebuilds the store from *all* ingest files.  ``incr`` extends
the committed store with only the new files, riding two warm paths: the
fingerprint-keyed artifact cache supplies the store's RFD set with zero
rediscovery, and :class:`~repro.discovery.incremental
.IncrementalDiscovery` maintains it under the inserted rows.  ``auto``
prefers INCR whenever its prerequisites hold.  A broken prerequisite —
store snapshot missing or fingerprint-mismatched, watermarked ingest
files deleted, artifact-cache miss — *degrades* the run to FULL with a
counted reason (``renuver_pipeline_degradations_total{reason}``); it
never crashes the pipeline.

INCR runs additionally preseed their journal with the carried-forward
*unresolved ledger*: cells earlier runs settled without a fill.  Replay
skips them, so an INCR run's imputation work is proportional to the
delta, not the store — the property ``benchmarks/bench_pipeline.py``
enforces.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

from repro.core import Renuver, RenuverConfig
from repro.core.report import ImputationReport
from repro.dataset.relation import Relation
from repro.discovery import DiscoveryConfig, discover_rfds
from repro.discovery.dime import DiscoveryResult
from repro.discovery.incremental import IncrementalDiscovery
from repro.exceptions import JournalError, PipelineError, ReproError
from repro.pipeline.ingest import batch_rows, load_combined, scan_ingest
from repro.pipeline.reconcile import (
    commit_store,
    load_store_relation,
    prune_store,
)
from repro.pipeline.runs import RunDirectory
from repro.pipeline.state import (
    Lease,
    PipelineState,
    RunRecord,
    RunStateStore,
    StoreVersion,
    Watermark,
)
from repro.robustness.journal import (
    JournalWriter,
    cell_record,
    outcome_from_record,
)
from repro.service.artifacts import ArtifactStore
from repro.telemetry import Telemetry
from repro.telemetry.logs import get_logger

logger = get_logger("pipeline.runner")

_RUNS = "renuver_pipeline_runs_total"
_HELP_RUNS = "Pipeline runs by mode and outcome."
_DEGRADATIONS = "renuver_pipeline_degradations_total"
_HELP_DEGRADATIONS = (
    "INCR runs degraded to FULL, by broken prerequisite."
)


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning of one pipeline instance."""

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    renuver: RenuverConfig = field(default_factory=RenuverConfig)
    #: ``auto`` | ``full`` | ``incr``.  ``incr`` is a *preference*: when
    #: its prerequisites are broken the run degrades to FULL (counted),
    #: it does not fail.
    mode: str = "auto"
    lease_ttl_seconds: float = 30.0
    owner: str | None = None
    #: Committed store snapshots kept on disk (older ones are pruned).
    keep_store_versions: int = 2
    #: Committed/failed run records retained in the state envelope.
    history_limit: int = 50

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "full", "incr"):
            raise PipelineError(
                f"pipeline mode must be auto, full or incr, "
                f"got {self.mode!r}"
            )


@dataclass(frozen=True)
class RunResult:
    """What one ``run``/``resume`` invocation did."""

    run_id: str | None
    mode: str                  # "full" | "incr" | "noop"
    outcome: str               # "committed" | "noop"
    rows_ingested: int = 0
    cells_imputed: int = 0
    cells_unresolved: int = 0
    store_version: int | None = None
    degraded_reason: str | None = None
    #: Whether a batch discovery ran (``False`` on the warm INCR path —
    #: the zero-rediscovery guarantee the benchmark asserts on).
    discovered: bool = False
    resumed: bool = False
    run_dir: Path | None = None

    def summary(self) -> str:
        """One-line digest for the CLI."""
        if self.outcome == "noop":
            return "pipeline: nothing to do (watermark is current)"
        bits = [
            f"run {self.run_id}: {self.mode.upper()} committed "
            f"store v{self.store_version}",
            f"{self.rows_ingested} rows ingested",
            f"{self.cells_imputed} cells imputed",
            f"{self.cells_unresolved} unresolved",
        ]
        if self.degraded_reason:
            bits.append(f"degraded ({self.degraded_reason})")
        if self.resumed:
            bits.append("resumed")
        return ", ".join(bits)


class Pipeline:
    """Crash-safe continuous-ingestion runner over one root directory.

    Parameters
    ----------
    root:
        The pipeline's private directory (state, lease, store, runs,
        artifact cache); created on first use.
    ingest_dir:
        The append-only directory of ``*.csv`` batches.
    config:
        :class:`PipelineConfig`; defaults throughout.
    telemetry:
        Optional shared spine.  By default each pipeline builds a live
        one, so every run directory gets a real trace and metrics
        snapshot.
    """

    def __init__(
        self,
        root: str | Path,
        ingest_dir: str | Path,
        config: PipelineConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.root = Path(root)
        self.ingest_dir = Path(ingest_dir)
        self.config = config or PipelineConfig()
        self.telemetry = telemetry or Telemetry()
        self.root.mkdir(parents=True, exist_ok=True)
        self.state_store = RunStateStore(
            self.root, telemetry=self.telemetry
        )
        self.artifacts = ArtifactStore(
            self.root / "artifacts", telemetry=self.telemetry
        )
        #: One store snapshot per version is enough for a whole run:
        #: mode choice, loading, and commit all read the same bytes.
        self._store_cache: tuple[int, Relation] | None = None

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute one run over whatever the ingest scan finds new.

        Refuses (with a located :class:`PipelineError`) when the state
        says a run is already in flight — that run must be ``resume``\\ d
        or has a live holder of the lease.  Returns a ``noop`` result
        when the watermark already covers every ingest file.
        """
        with self._lease().held():
            state = self.state_store.load()
            if state.run is not None and state.run.status == "running":
                raise PipelineError(
                    f"run {state.run.run_id} is in flight (crashed or "
                    f"killed); use `pipeline resume` to finish it "
                    f"before starting a new run"
                )
            files = scan_ingest(self.ingest_dir)
            new_files = tuple(
                name for name in files
                if name not in set(state.watermark.files)
            )
            if not new_files:
                self._count_run("noop", "noop")
                return RunResult(run_id=None, mode="noop", outcome="noop")

            mode, base_version, degraded = self._choose_mode(
                state, files
            )
            record = RunRecord(
                run_id=f"{state.runs_started + 1:06d}-{mode}",
                mode=mode,
                status="running",
                files=tuple(files),
                new_files=new_files,
                base_version=base_version,
                requested_mode=self.config.mode,
                degraded_reason=degraded,
                started_unix=time.time(),
            )
            state = replace(
                state, runs_started=state.runs_started + 1, run=record
            )
            # Persist the running record *before* any work: a crash
            # from here on leaves a resumable state envelope.
            self.state_store.save(state)
            return self._execute(state, resumed=False)

    def resume(self) -> RunResult:
        """Finish the run the state envelope says is in flight.

        Acquires the lease (taking over the crashed run's stale one),
        rebuilds the run's exact inputs from its persisted
        :class:`RunRecord`, replays the journal prefix and completes
        the run.  A noop when nothing is in flight.
        """
        with self._lease().held():
            state = self.state_store.load()
            record = state.run
            if record is None or record.status != "running":
                self._count_run("noop", "noop")
                return RunResult(run_id=None, mode="noop", outcome="noop")
            state = self._revalidate_for_resume(state)
            return self._execute(state, resumed=True)

    def status(self) -> dict[str, Any]:
        """A lease-free, read-only snapshot for ``pipeline status``."""
        state = self.state_store.load()
        lease = Lease(
            self.root / "pipeline.lock",
            ttl_seconds=self.config.lease_ttl_seconds,
        )
        holder = lease.peek()
        return {
            "root": str(self.root),
            "runs_started": state.runs_started,
            "watermark": state.watermark.to_payload(),
            "store": None if state.store is None
            else state.store.to_payload(),
            "in_flight": None if state.run is None
            else state.run.to_payload(),
            "unresolved_cells": len(state.unresolved),
            "history": [
                record.to_payload() for record in state.history[-5:]
            ],
            "lease": {
                "held": bool(holder),
                "stale": bool(holder) and lease.is_stale(holder),
                "owner": holder.get("owner"),
                "pid": holder.get("pid"),
                "host": holder.get("host"),
            },
        }

    # ------------------------------------------------------------------
    # Mode selection and resume revalidation
    # ------------------------------------------------------------------
    def _choose_mode(
        self, state: PipelineState, files: Sequence[str]
    ) -> tuple[str, int | None, str | None]:
        """``(mode, base_version, degraded_reason)`` for a fresh run."""
        if self.config.mode == "full":
            return "full", None, None
        if state.store is None:
            # Bootstrap: there is nothing to extend.  Only a *requested*
            # INCR counts as degraded; auto's first run is simply FULL.
            if self.config.mode == "incr":
                return "full", None, self._degrade("no_store")
            return "full", None, None
        reason = self._incr_blocker(state, files)
        if reason is None:
            return "incr", state.store.version, None
        return "full", None, self._degrade(reason)

    def _incr_blocker(
        self, state: PipelineState, files: Sequence[str]
    ) -> str | None:
        """Why INCR cannot run, or ``None`` when it can."""
        missing = set(state.watermark.files) - set(files)
        if missing:
            return "watermark_mismatch"
        assert state.store is not None
        try:
            base = self._load_base(state.store)
        except PipelineError:
            return "store_integrity"
        if self.artifacts.load_discovery(
            base, self.config.discovery
        ) is None:
            return "discovery_cache_miss"
        return None

    def _degrade(self, reason: str) -> str:
        self.telemetry.metrics.counter(
            _DEGRADATIONS, _HELP_DEGRADATIONS, reason=reason
        ).inc()
        logger.warning(
            "INCR prerequisites broken (%s); degrading to FULL", reason
        )
        return reason

    def _revalidate_for_resume(self, state: PipelineState) -> PipelineState:
        """Degrade a resumed INCR run whose prerequisites rotted while
        it was down (store pruned, cache evicted, files deleted)."""
        record = state.run
        assert record is not None
        if record.mode != "incr":
            return state
        reason = self._incr_blocker(state, scan_ingest(self.ingest_dir))
        if reason is None:
            return state
        # The dirty relation changes shape under FULL, so the old
        # journal can never replay; move it aside for forensics.
        rundir = RunDirectory(self.root, record.run_id)
        self._quarantine_journal(rundir, "degraded-" + reason)
        record = replace(
            record,
            mode="full",
            base_version=None,
            degraded_reason=self._degrade(reason),
        )
        state = replace(state, run=record)
        self.state_store.save(state)
        return state

    # ------------------------------------------------------------------
    # Run execution (shared by run() and resume())
    # ------------------------------------------------------------------
    def _execute(self, state: PipelineState, *, resumed: bool) -> RunResult:
        record = state.run
        assert record is not None
        rundir = RunDirectory(self.root, record.run_id)
        stage = "load"
        try:
            with self.telemetry.tracer.span(
                "pipeline.run",
                run_id=record.run_id, mode=record.mode, resumed=resumed,
            ):
                with self._stage("load", record):
                    base, dirty, new_rows = self._load(state, record)
                stage = "discover"
                with self._stage("discover", record):
                    rfds, discovered = self._discover(
                        record, base, dirty
                    )
                stage = "impute"
                with self._stage("impute", record):
                    result = self._impute(
                        state, record, rundir, dirty, rfds,
                        resumed=resumed,
                    )
                stage = "artifacts"
                with self._stage("artifacts", record):
                    self._write_artifacts(record, rundir, result, base)
                stage = "commit"
                with self._stage("commit", record):
                    committed = self._commit(
                        state, record, rundir, result, rfds,
                        new_rows=new_rows,
                        discovered=discovered,
                        resumed=resumed,
                    )
        except ReproError as exc:
            self._count_run(record.mode, "failed")
            raise PipelineError(
                f"run {record.run_id} failed in stage {stage!r}: {exc}"
            ) from exc
        except Exception as exc:  # noqa: BLE001 - located, resumable
            self._count_run(record.mode, "failed")
            raise PipelineError(
                f"run {record.run_id} failed in stage {stage!r}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self._count_run(record.mode, "committed")
        try:
            rundir.export_telemetry(self.telemetry)
        except OSError as exc:
            # The run has committed; losing the trace/metrics snapshot
            # must not fail it.
            logger.warning(
                "run %s committed but telemetry export failed: %s",
                record.run_id, exc,
            )
        return committed

    def _stage(self, name: str, record: RunRecord):
        return self.telemetry.tracer.span(
            "pipeline.stage", stage=name, run_id=record.run_id
        )

    def _count_run(self, mode: str, outcome: str) -> None:
        self.telemetry.metrics.counter(
            _RUNS, _HELP_RUNS, mode=mode, outcome=outcome
        ).inc()

    # -- load ------------------------------------------------------------
    def _load_base(self, store: StoreVersion) -> Relation:
        """The committed store snapshot, loaded once per version.

        Verification happens on first load (``load_store_relation``
        fingerprints the bytes); callers never mutate the returned
        relation, they ``copy`` before appending.
        """
        cached = self._store_cache
        if cached is not None and cached[0] == store.version:
            return cached[1]
        base = load_store_relation(self.root, store, name="store")
        self._store_cache = (store.version, base)
        return base

    def _load(
        self, state: PipelineState, record: RunRecord
    ) -> tuple[Relation | None, Relation, int]:
        """``(base, dirty, new_row_count)`` for the run.

        FULL: the dirty relation is every covered ingest file combined
        (types inferred over the whole data).  INCR: the committed
        store snapshot plus the new files' rows parsed under the
        store's schema — built so a resume reconstructs byte-identical
        inputs from the record alone.
        """
        if record.mode == "full":
            dirty = load_combined(
                self.ingest_dir, record.files, name="ingest"
            )
            return None, dirty, dirty.n_tuples
        assert state.store is not None
        base = self._load_base(state.store)
        rows = batch_rows(self.ingest_dir, record.new_files, base)
        dirty = base.copy(name="ingest")
        if rows:
            _append_rows(dirty, rows)
        return base, dirty, len(rows)

    # -- discover --------------------------------------------------------
    def _discover(
        self,
        record: RunRecord,
        base: Relation | None,
        dirty: Relation,
    ) -> tuple[DiscoveryResult, bool]:
        """The run's RFD set and whether batch discovery ran.

        FULL discovers on the dirty relation (artifact-cached by its
        fingerprint, so re-running an identical input is warm too).
        INCR never discovers: the cached store RFD set is maintained
        incrementally under the inserted rows.
        """
        if record.mode == "full":
            cached = self.artifacts.load_discovery(
                dirty, self.config.discovery
            )
            if cached is not None:
                return cached, False
            result = discover_rfds(
                dirty, self.config.discovery, telemetry=self.telemetry
            )
            self.artifacts.save_discovery(
                dirty, self.config.discovery, result
            )
            return result, True
        assert base is not None
        cached = self.artifacts.load_discovery(
            base, self.config.discovery
        )
        if cached is None:  # revalidated at mode choice; belt anyway
            raise PipelineError(
                f"run {record.run_id}: cached discovery for store "
                f"vanished mid-run"
            )
        maintainer = IncrementalDiscovery(
            base, self.config.discovery, initial=cached
        )
        rows = batch_rows(self.ingest_dir, record.new_files, base)
        if rows:
            report = maintainer.insert(rows)
            logger.info(
                "incremental maintenance: %s", report.summary()
            )
        maintained = DiscoveryResult(
            rfds=maintainer.rfds,
            key_rfds=maintainer.key_rfds,
            config=self.config.discovery,
            n_pairs=cached.n_pairs,
            exact=False,
        )
        return maintained, False

    # -- impute ----------------------------------------------------------
    def _impute(
        self,
        state: PipelineState,
        record: RunRecord,
        rundir: RunDirectory,
        dirty: Relation,
        rfds: DiscoveryResult,
        *,
        resumed: bool,
    ):
        """Run the (journaled) imputation, resuming when possible."""
        journal = rundir.journal_path
        resume_from: Path | None = None
        if resumed and journal.exists():
            resume_from = journal
        elif not journal.exists() and record.mode == "incr":
            self._preseed_journal(state, journal, dirty)
            resume_from = journal if state.unresolved else None
        engine = Renuver(
            rfds.all_rfds,
            self.config.renuver,
            telemetry=self.telemetry,
        )
        try:
            return engine.impute(
                dirty, journal=journal, resume_from=resume_from
            )
        except JournalError as exc:
            if resume_from is None:
                raise
            # The journal a crashed run left is unusable (torn beyond
            # the tolerated tail, or the inputs drifted).  Quarantine
            # it and redo the run from scratch — determinism makes the
            # redo equivalent.
            logger.warning(
                "run %s: journal replay failed (%s); quarantining and "
                "re-running", record.run_id, exc,
            )
            self._quarantine_journal(rundir, "replay-failed")
            if record.mode == "incr":
                self._preseed_journal(state, journal, dirty)
                fresh_resume = journal if state.unresolved else None
            else:
                fresh_resume = None
            return engine.impute(
                dirty, journal=journal, resume_from=fresh_resume
            )

    def _preseed_journal(
        self, state: PipelineState, journal: Path, dirty: Relation
    ) -> None:
        """Seed an INCR journal with the carried-forward unresolved
        ledger, so replay settles those cells without re-imputing them.

        The ledger's records are journal ``cell`` records whose row
        coordinates index the store prefix of ``dirty``, so they replay
        verbatim.  An empty ledger still writes the header (the journal
        is about to be appended to by the run anyway).
        """
        writer = JournalWriter(journal)
        try:
            writer.write_header(
                dirty, engine=self.config.renuver.engine
            )
            for entry in state.unresolved:
                writer.record_cell(outcome_from_record(entry))
        finally:
            writer.close()

    def _quarantine_journal(
        self, rundir: RunDirectory, label: str
    ) -> None:
        journal = rundir.journal_path
        if not journal.exists():
            return
        target = journal.with_name(f"journal.{label}.corrupt")
        try:
            journal.replace(target)
        except OSError:  # pragma: no cover - same-dir rename
            journal.unlink(missing_ok=True)

    # -- artifacts -------------------------------------------------------
    def _write_artifacts(
        self,
        record: RunRecord,
        rundir: RunDirectory,
        result,
        base: Relation | None,
    ) -> None:
        """The run's delta CSV and report (all atomic writes)."""
        relation = result.relation
        start = 0 if base is None else base.n_tuples
        delta = _slice_rows(relation, start, name="delta")
        rundir.write_delta(delta)
        rundir.write_report(
            result.report,
            mode=record.mode,
            requested_mode=record.requested_mode,
            degraded_reason=record.degraded_reason,
            files=list(record.files),
            new_files=list(record.new_files),
            base_version=record.base_version,
        )

    # -- commit ----------------------------------------------------------
    def _commit(
        self,
        state: PipelineState,
        record: RunRecord,
        rundir: RunDirectory,
        result,
        rfds: DiscoveryResult,
        *,
        new_rows: int,
        discovered: bool,
        resumed: bool,
    ) -> RunResult:
        """Fold the accepted result into the persistent store and move
        the state envelope — the run's single commit point."""
        report: ImputationReport = result.report
        version = 1 if state.store is None else state.store.version + 1
        committed = commit_store(self.root, result.relation, version)

        # Key the store's RFD set by the *re-read* snapshot so the next
        # INCR run's cache lookup hits.  A failed save degrades that
        # run to FULL (counted there), never this commit.
        store_relation = self._load_base(committed)
        self.artifacts.save_discovery(
            store_relation, self.config.discovery,
            DiscoveryResult(
                rfds=rfds.rfds,
                key_rfds=rfds.key_rfds,
                config=self.config.discovery,
                n_pairs=rfds.n_pairs,
                exact=False,
            ),
        )

        unresolved = tuple(
            cell_record(outcome)
            for outcome in report.outcomes
            if not outcome.filled
        )
        finished = replace(
            record,
            status="committed",
            finished_unix=time.time(),
            rows_ingested=new_rows,
            cells_imputed=report.filled_count,
        )
        history = (state.history + (finished,))[
            -self.config.history_limit:
        ]
        new_state = replace(
            state,
            watermark=Watermark(
                files=tuple(record.files), rows=committed.rows
            ),
            store=committed,
            run=None,
            history=history,
            unresolved=unresolved,
        )
        self.state_store.save(new_state)  # <-- THE commit point
        prune_store(
            self.root, committed, keep=self.config.keep_store_versions
        )
        rundir.write_manifest(
            mode=finished.mode,
            store_version=committed.version,
            store_fingerprint=committed.fingerprint,
            rows=committed.rows,
            cells_imputed=finished.cells_imputed,
            unresolved=len(unresolved),
            degraded_reason=finished.degraded_reason,
        )
        return RunResult(
            run_id=finished.run_id,
            mode=finished.mode,
            outcome="committed",
            rows_ingested=finished.rows_ingested,
            cells_imputed=finished.cells_imputed,
            cells_unresolved=len(unresolved),
            store_version=committed.version,
            degraded_reason=finished.degraded_reason,
            discovered=discovered,
            resumed=resumed,
            run_dir=rundir.path,
        )

    # ------------------------------------------------------------------
    def _lease(self) -> Lease:
        return Lease(
            self.root / "pipeline.lock",
            owner=self.config.owner,
            ttl_seconds=self.config.lease_ttl_seconds,
        )


# ----------------------------------------------------------------------
# Relation helpers
# ----------------------------------------------------------------------
def _append_rows(relation: Relation, rows: list[tuple]) -> None:
    """Append typed row tuples to ``relation`` in place."""
    from repro.dataset.missing import MISSING

    names = relation.attribute_names
    start = relation.n_tuples
    for name in names:
        relation._columns[name].extend(  # noqa: SLF001 - same package idiom
            [MISSING] * len(rows)
        )
    for offset, row in enumerate(rows):
        for name, value in zip(names, row):
            relation.set_value(start + offset, name, value)


def _slice_rows(
    relation: Relation, start: int, *, name: str
) -> Relation:
    """Rows ``start..n`` of ``relation`` as a new relation (the run's
    delta; the whole relation when ``start`` is 0)."""
    rows = [
        relation.row_values(index)
        for index in range(start, relation.n_tuples)
    ]
    return Relation.from_rows(
        list(relation.attributes), rows, name=name
    )


__all__ = ["Pipeline", "PipelineConfig", "RunResult"]
