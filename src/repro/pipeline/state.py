"""Persistent run state for the continuous-ingestion pipeline.

Two crash-safety primitives live here:

:class:`RunStateStore`
    ``state.json`` — a versioned, checksummed envelope holding the
    pipeline's :class:`PipelineState` (watermark, store version, the
    run in flight, history, and the carried-forward unresolved-cell
    ledger).  Every save atomically stages the previous envelope to
    ``state.json.prev`` before replacing ``state.json``, so a torn or
    corrupted current envelope degrades to a *counted* one-version
    rollback (``renuver_pipeline_state_recoveries_total``) instead of a
    crash.  Only when both copies are unreadable does the store raise
    :class:`~repro.exceptions.StateError`.

:class:`Lease`
    ``pipeline.lock`` — a single-writer lease guarding the whole
    pipeline root.  Acquisition is an ``O_CREAT|O_EXCL`` create (atomic
    on POSIX); a lease left behind by a crashed run is *stale* (corrupt
    payload, dead pid on the same host, or heartbeat older than its
    TTL) and is taken over via ``os.rename`` of the stale lock file —
    rename is atomic, so when several contenders race for the same
    stale lease exactly one wins the takeover and the rest retry
    against the winner's fresh (live) lock.  A held lease renews its
    mtime from a heartbeat thread so long runs never look stale.

Both are deliberately free of pipeline logic: the runner
(:mod:`repro.pipeline.runner`) decides *what* to persist and *when*;
this module only guarantees the persistence itself survives crashes.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from contextlib import contextmanager

from repro.exceptions import LeaseError, StateError
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger
from repro.utils.atomic import atomic_write_text
from repro.utils.fingerprint import payload_fingerprint

logger = get_logger("pipeline.state")

#: Envelope schema version; any other version is treated as corruption
#: (fall back to ``.prev``, then raise), never silently reinterpreted.
STATE_VERSION = 1

_RECOVERIES = "renuver_pipeline_state_recoveries_total"
_HELP_RECOVERIES = (
    "Pipeline state loads that fell back to the .prev envelope."
)

_RUN_MODES = ("full", "incr")
_RUN_STATUSES = ("running", "committed", "failed")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise StateError(f"invalid pipeline state: {message}")


@dataclass(frozen=True)
class Watermark:
    """How far ingestion has been consumed: the exact ingest file names
    already folded into the persistent store, plus their total rows."""

    files: tuple[str, ...] = ()
    rows: int = 0

    def to_payload(self) -> dict[str, Any]:
        return {"files": list(self.files), "rows": self.rows}

    @classmethod
    def from_payload(cls, payload: Any) -> "Watermark":
        _require(isinstance(payload, dict), "watermark is not an object")
        files = payload.get("files", [])
        _require(
            isinstance(files, list)
            and all(isinstance(f, str) for f in files),
            "watermark.files is not a list of names",
        )
        rows = payload.get("rows", 0)
        _require(
            isinstance(rows, int) and rows >= 0,
            "watermark.rows is not a non-negative integer",
        )
        return cls(files=tuple(files), rows=rows)


@dataclass(frozen=True)
class StoreVersion:
    """One committed snapshot of the persistent imputed store."""

    version: int
    filename: str
    #: SHA-256 relation fingerprint of the snapshot *as re-read from
    #: disk* — the exact key the next INCR run's artifact-cache lookup
    #: and store-integrity check must match.
    fingerprint: str
    rows: int

    def to_payload(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "filename": self.filename,
            "fingerprint": self.fingerprint,
            "rows": self.rows,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "StoreVersion":
        _require(isinstance(payload, dict), "store is not an object")
        version = payload.get("version")
        _require(
            isinstance(version, int) and version >= 1,
            "store.version is not a positive integer",
        )
        filename = payload.get("filename")
        _require(
            isinstance(filename, str) and bool(filename),
            "store.filename is not a file name",
        )
        fingerprint = payload.get("fingerprint")
        _require(
            isinstance(fingerprint, str) and bool(fingerprint),
            "store.fingerprint is not a digest",
        )
        rows = payload.get("rows", 0)
        _require(
            isinstance(rows, int) and rows >= 0,
            "store.rows is not a non-negative integer",
        )
        return cls(
            version=version, filename=filename,
            fingerprint=fingerprint, rows=rows,
        )


@dataclass(frozen=True)
class RunRecord:
    """Everything needed to re-execute one run deterministically.

    ``files`` is the run's *complete* watermark-to-be (every ingest file
    the run covers); ``new_files`` is the delta beyond the previous
    watermark.  Together with ``base_version`` they pin the run's exact
    inputs, so ``pipeline resume`` rebuilds the identical dirty relation
    a crashed run started from — which is what lets the journal replay
    (fingerprint-checked) and the recommitted store come out
    bit-identical.
    """

    run_id: str
    mode: str                      # "full" | "incr"
    status: str                    # "running" | "committed" | "failed"
    files: tuple[str, ...]         # all ingest files covered by the run
    new_files: tuple[str, ...]     # files beyond the previous watermark
    base_version: int | None       # store version an INCR run extends
    requested_mode: str = "auto"
    degraded_reason: str | None = None
    started_unix: float = 0.0
    finished_unix: float | None = None
    rows_ingested: int = 0
    cells_imputed: int = 0

    def to_payload(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "mode": self.mode,
            "status": self.status,
            "files": list(self.files),
            "new_files": list(self.new_files),
            "base_version": self.base_version,
            "requested_mode": self.requested_mode,
            "degraded_reason": self.degraded_reason,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "rows_ingested": self.rows_ingested,
            "cells_imputed": self.cells_imputed,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "RunRecord":
        _require(isinstance(payload, dict), "run record is not an object")
        run_id = payload.get("run_id")
        _require(
            isinstance(run_id, str) and bool(run_id),
            "run.run_id is not a name",
        )
        mode = payload.get("mode")
        _require(mode in _RUN_MODES, f"run.mode {mode!r} is unknown")
        status = payload.get("status")
        _require(
            status in _RUN_STATUSES, f"run.status {status!r} is unknown"
        )
        for key in ("files", "new_files"):
            value = payload.get(key, [])
            _require(
                isinstance(value, list)
                and all(isinstance(f, str) for f in value),
                f"run.{key} is not a list of names",
            )
        base_version = payload.get("base_version")
        _require(
            base_version is None
            or (isinstance(base_version, int) and base_version >= 1),
            "run.base_version is not a positive integer",
        )
        started = payload.get("started_unix", 0.0)
        _require(
            isinstance(started, (int, float)),
            "run.started_unix is not a timestamp",
        )
        finished = payload.get("finished_unix")
        _require(
            finished is None or isinstance(finished, (int, float)),
            "run.finished_unix is not a timestamp",
        )
        for key in ("rows_ingested", "cells_imputed"):
            value = payload.get(key, 0)
            _require(
                isinstance(value, int) and value >= 0,
                f"run.{key} is not a non-negative integer",
            )
        degraded = payload.get("degraded_reason")
        _require(
            degraded is None or isinstance(degraded, str),
            "run.degraded_reason is not a string",
        )
        requested = payload.get("requested_mode", "auto")
        _require(
            requested in ("auto",) + _RUN_MODES,
            f"run.requested_mode {requested!r} is unknown",
        )
        return cls(
            run_id=run_id,
            mode=mode,
            status=status,
            files=tuple(payload.get("files", [])),
            new_files=tuple(payload.get("new_files", [])),
            base_version=base_version,
            requested_mode=requested,
            degraded_reason=degraded,
            started_unix=float(started),
            finished_unix=None if finished is None else float(finished),
            rows_ingested=payload.get("rows_ingested", 0),
            cells_imputed=payload.get("cells_imputed", 0),
        )


@dataclass(frozen=True)
class PipelineState:
    """The pipeline's whole persisted world, one immutable value.

    Mutation goes through :func:`dataclasses.replace` so every state
    transition is explicit in the runner and the envelope on disk is
    always one complete, internally consistent snapshot.
    """

    runs_started: int = 0
    watermark: Watermark = field(default_factory=Watermark)
    store: StoreVersion | None = None
    #: The run currently in flight (``status == "running"`` after a
    #: crash — that is precisely what ``pipeline resume`` looks for).
    run: RunRecord | None = None
    history: tuple[RunRecord, ...] = ()
    #: Journal ``cell`` records of cells earlier runs settled *without*
    #: a fill.  INCR runs preseed their journal with these so replay
    #: skips them — the delta run re-imputes only new work.
    unresolved: tuple[dict[str, Any], ...] = ()

    def to_payload(self) -> dict[str, Any]:
        return {
            "runs_started": self.runs_started,
            "watermark": self.watermark.to_payload(),
            "store": None if self.store is None else self.store.to_payload(),
            "run": None if self.run is None else self.run.to_payload(),
            "history": [record.to_payload() for record in self.history],
            "unresolved": [dict(record) for record in self.unresolved],
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "PipelineState":
        _require(isinstance(payload, dict), "state is not an object")
        runs_started = payload.get("runs_started", 0)
        _require(
            isinstance(runs_started, int) and runs_started >= 0,
            "runs_started is not a non-negative integer",
        )
        store = payload.get("store")
        run = payload.get("run")
        history = payload.get("history", [])
        _require(isinstance(history, list), "history is not a list")
        unresolved = payload.get("unresolved", [])
        _require(
            isinstance(unresolved, list)
            and all(
                isinstance(r, dict) and r.get("type") == "cell"
                for r in unresolved
            ),
            "unresolved is not a list of journal cell records",
        )
        return cls(
            runs_started=runs_started,
            watermark=Watermark.from_payload(
                payload.get("watermark", {})
            ),
            store=None if store is None else StoreVersion.from_payload(store),
            run=None if run is None else RunRecord.from_payload(run),
            history=tuple(
                RunRecord.from_payload(record) for record in history
            ),
            unresolved=tuple(dict(record) for record in unresolved),
        )


class RunStateStore:
    """Atomic, self-recovering persistence for :class:`PipelineState`.

    Layout under ``root``::

        state.json        the current envelope
        state.json.prev   the envelope one save earlier

    The envelope wraps the payload with a schema version, a
    monotonically increasing ``envelope_seq`` and a canonical-JSON
    SHA-256 checksum, so silent truncation or bit rot is *detected* —
    and recovered from, via ``.prev`` — rather than deserialized into
    nonsense.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.root = Path(root)
        self.path = self.root / "state.json"
        self.previous_path = self.root / "state.json.prev"
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Sequence number of the last envelope read or written.
        self.envelope_seq = 0

    # ------------------------------------------------------------------
    def load(self) -> PipelineState:
        """The persisted state; a fresh one when nothing exists yet.

        A corrupt ``state.json`` falls back to ``state.json.prev`` with
        a counted warning (one committed run's worth of rollback — the
        reconciler re-derives the rest).  Both corrupt raises
        :class:`StateError`.
        """
        current = self._read(self.path)
        if current is not None:
            return current
        if not self.path.exists() and not self.previous_path.exists():
            return PipelineState()
        previous = self._read(self.previous_path)
        if previous is not None:
            self.telemetry.metrics.counter(
                _RECOVERIES, _HELP_RECOVERIES
            ).inc()
            logger.warning(
                "state %s is unreadable; recovered envelope seq %d "
                "from %s", self.path, self.envelope_seq,
                self.previous_path,
            )
            return previous
        raise StateError(
            f"pipeline state {self.path} and fallback "
            f"{self.previous_path} are both unreadable"
        )

    def save(self, state: PipelineState) -> int:
        """Persist ``state``; returns the new envelope sequence number.

        The previous envelope is staged to ``.prev`` *before* the
        current file is replaced, so at every instant at least one
        complete, checksummed envelope exists on disk.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            try:
                atomic_write_text(
                    self.previous_path,
                    self.path.read_text(encoding="utf-8"),
                )
            except OSError as exc:
                raise StateError(
                    f"cannot stage previous state to "
                    f"{self.previous_path}: {exc}"
                ) from exc
        self.envelope_seq += 1
        payload = state.to_payload()
        envelope = {
            "state_version": STATE_VERSION,
            "envelope_seq": self.envelope_seq,
            "checksum": payload_fingerprint(payload),
            "payload": payload,
        }
        try:
            atomic_write_text(
                self.path,
                json.dumps(envelope, ensure_ascii=False, indent=2),
            )
        except OSError as exc:
            raise StateError(
                f"cannot persist pipeline state {self.path}: {exc}"
            ) from exc
        return self.envelope_seq

    # ------------------------------------------------------------------
    def _read(self, path: Path) -> PipelineState | None:
        """Parse one envelope file; ``None`` when absent or corrupt."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            logger.warning("state envelope %s is corrupt: %s", path, exc)
            return None
        if not isinstance(envelope, dict):
            logger.warning("state envelope %s is not an object", path)
            return None
        if envelope.get("state_version") != STATE_VERSION:
            logger.warning(
                "state envelope %s has version %r, expected %d",
                path, envelope.get("state_version"), STATE_VERSION,
            )
            return None
        payload = envelope.get("payload")
        if payload_fingerprint(payload) != envelope.get("checksum"):
            logger.warning(
                "state envelope %s fails its checksum", path
            )
            return None
        try:
            state = PipelineState.from_payload(payload)
        except StateError as exc:
            logger.warning("state envelope %s: %s", path, exc)
            return None
        seq = envelope.get("envelope_seq")
        if isinstance(seq, int) and seq >= 0:
            self.envelope_seq = seq
        return state


# ----------------------------------------------------------------------
# The pipeline lease
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    """Best-effort liveness; unknown (EPERM) counts as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


class Lease:
    """Single-writer lease over a pipeline root, with stale takeover.

    The lock file's *content* names the holder (owner, pid, host,
    token); its *mtime* is the heartbeat.  Liveness is judged in this
    order:

    1. unreadable/corrupt payload  → stale (a torn write — the writer
       died inside its own acquisition);
    2. holder pid dead, same host  → stale;
    3. heartbeat older than the holder's TTL → stale (covers remote or
       unverifiable holders);
    4. otherwise                   → live, and :meth:`acquire` raises
       :class:`~repro.exceptions.LeaseError` naming the holder.

    Takeover of a stale lease renames the lock file to a per-contender
    claim file first.  ``os.rename`` succeeds for exactly one of any
    number of simultaneous contenders (the rest get ``FileNotFoundError``
    and re-examine whatever lock exists next), which is the whole
    exactly-one-winner guarantee — no extra coordination needed.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        owner: str | None = None,
        ttl_seconds: float = 30.0,
    ) -> None:
        if ttl_seconds <= 0:
            raise LeaseError(
                f"lease TTL must be positive, got {ttl_seconds}"
            )
        self.path = Path(path)
        self.owner = owner or f"pid-{os.getpid()}"
        self.ttl_seconds = float(ttl_seconds)
        self.token = uuid.uuid4().hex
        self._held = False

    # ------------------------------------------------------------------
    def acquire(self, *, attempts: int = 8) -> None:
        """Take the lease, stealing a stale one if necessary."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(attempts):
            try:
                fd = os.open(
                    self.path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileExistsError:
                holder = self.peek()
                if not self.is_stale(holder):
                    raise LeaseError(
                        f"pipeline lease {self.path} is held by "
                        f"{holder.get('owner', '?')} "
                        f"(pid {holder.get('pid', '?')} on "
                        f"{holder.get('host', '?')}); a live run is in "
                        f"progress"
                    )
                if self._take_over(holder):
                    continue  # stale lock removed; retry the create
                # Lost the takeover race: someone else owns a fresh
                # lock now — loop and re-judge it.
                time.sleep(0.01)
                continue
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(json.dumps(self._payload()))
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError as exc:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
                raise LeaseError(
                    f"cannot write lease {self.path}: {exc}"
                ) from exc
            self._held = True
            logger.info(
                "lease %s acquired by %s (token %s)",
                self.path, self.owner, self.token[:8],
            )
            return
        raise LeaseError(
            f"could not acquire lease {self.path} after {attempts} "
            f"attempts (takeover contention)"
        )

    def renew(self) -> None:
        """Refresh the heartbeat (the lock file's mtime)."""
        if not self._held:
            return
        try:
            os.utime(self.path)
        except OSError:  # pragma: no cover - lease dir vanished
            logger.warning("lease %s heartbeat failed", self.path)

    def release(self) -> None:
        """Drop the lease — only if the lock is still ours (token
        match); a taken-over lock is left for its new holder."""
        if not self._held:
            return
        self._held = False
        holder = self.peek()
        if holder.get("token") == self.token:
            try:
                os.unlink(self.path)
            except OSError:
                pass
            logger.info("lease %s released by %s", self.path, self.owner)

    @contextmanager
    def held(self) -> Iterator["Lease"]:
        """Acquire, heartbeat from a daemon thread, release."""
        self.acquire()
        stop = threading.Event()
        interval = max(0.05, self.ttl_seconds / 3.0)

        def beat() -> None:
            while not stop.wait(interval):
                self.renew()

        thread = threading.Thread(
            target=beat, name="pipeline-lease-heartbeat", daemon=True
        )
        thread.start()
        try:
            yield self
        finally:
            stop.set()
            thread.join(timeout=interval * 2)
            self.release()

    # ------------------------------------------------------------------
    def peek(self) -> dict[str, Any]:
        """The current lock payload; ``{}`` when absent or corrupt."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return {}
        return payload if isinstance(payload, dict) else {}

    def _payload(self) -> dict[str, Any]:
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_unix": time.time(),
            "ttl_seconds": self.ttl_seconds,
            "token": self.token,
        }

    def is_stale(self, holder: dict[str, Any]) -> bool:
        if not holder or "token" not in holder:
            return True  # torn or foreign lock file
        pid = holder.get("pid")
        host = holder.get("host")
        if (
            isinstance(pid, int)
            and host == socket.gethostname()
            and not _pid_alive(pid)
        ):
            return True
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # vanished: the next O_EXCL will settle it
        ttl = holder.get("ttl_seconds")
        if not isinstance(ttl, (int, float)) or ttl <= 0:
            ttl = self.ttl_seconds
        return age > ttl

    def _take_over(self, holder: dict[str, Any]) -> bool:
        """Steal a stale lock; ``True`` when this contender won."""
        claim = self.path.with_name(
            f"{self.path.name}.claim-{self.token}"
        )
        try:
            os.rename(self.path, claim)
        except FileNotFoundError:
            return False  # another contender renamed it first
        except OSError as exc:  # pragma: no cover - exotic filesystems
            raise LeaseError(
                f"cannot take over stale lease {self.path}: {exc}"
            ) from exc
        logger.warning(
            "took over stale lease %s (was %s, pid %s on %s)",
            self.path, holder.get("owner", "?"),
            holder.get("pid", "?"), holder.get("host", "?"),
        )
        try:
            claim.unlink()
        except OSError:
            pass
        return True


__all__ = [
    "Lease",
    "PipelineState",
    "RunRecord",
    "RunStateStore",
    "STATE_VERSION",
    "StoreVersion",
    "Watermark",
]
