"""The persistent imputed store: versioned snapshots under
``<root>/store/``.

The store is the pipeline's *only* downstream-visible output: one CSV
per committed version, named ``imputed-<version:06d>.csv``.  A run
writes its snapshot atomically, **re-reads** it, and fingerprints the
re-read relation — that round-tripped fingerprint is what lands in the
state envelope, so the integrity check and the artifact-cache key of
the *next* INCR run are computed over exactly the bytes a future load
will see (type re-inference and CSV rendering included), never over an
in-memory relation that might render differently.

A snapshot whose re-read fingerprint no longer matches its envelope
entry (bit rot, manual edits) raises a located
:class:`~repro.exceptions.PipelineError`; the runner treats that as a
degradation to FULL, not a crash.
"""

from __future__ import annotations

from pathlib import Path

from repro.dataset.csv_io import read_csv, write_csv
from repro.dataset.relation import Relation
from repro.exceptions import PipelineError
from repro.pipeline.state import StoreVersion
from repro.telemetry.logs import get_logger
from repro.utils.fingerprint import relation_fingerprint

logger = get_logger("pipeline.reconcile")

STORE_DIR = "store"


def store_path(root: str | Path, version: StoreVersion) -> Path:
    """Where ``version``'s snapshot lives."""
    return Path(root) / STORE_DIR / version.filename


def store_filename(version: int) -> str:
    """Deterministic snapshot file name for ``version``."""
    return f"imputed-{version:06d}.csv"


def load_store_relation(
    root: str | Path, version: StoreVersion, *, name: str = "store"
) -> Relation:
    """The committed snapshot ``version``, integrity-checked.

    Raises :class:`PipelineError` when the file is gone, unreadable or
    its content no longer matches the committed fingerprint — the
    runner's cue to degrade an INCR run to FULL.
    """
    path = store_path(root, version)
    try:
        relation = read_csv(path, name=name)
    except OSError as exc:
        raise PipelineError(
            f"store snapshot {path} (version {version.version}) is "
            f"unreadable: {exc}"
        ) from exc
    actual = relation_fingerprint(relation)
    if actual != version.fingerprint:
        raise PipelineError(
            f"store snapshot {path} does not match its committed "
            f"fingerprint (expected {version.fingerprint[:12]}…, "
            f"found {actual[:12]}…); the store was modified outside "
            f"the pipeline"
        )
    return relation


def commit_store(
    root: str | Path, relation: Relation, version: int
) -> StoreVersion:
    """Write ``relation`` as snapshot ``version`` and describe it.

    The snapshot is written atomically, then re-read so the recorded
    fingerprint and row count describe the on-disk bytes.  Raises
    :class:`PipelineError` on any write/re-read failure (the run stays
    resumable: the state envelope has not moved yet).
    """
    path = Path(root) / STORE_DIR / store_filename(version)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        write_csv(relation, path)
        reread = read_csv(path, name=relation.name)
    except OSError as exc:
        raise PipelineError(
            f"cannot commit store snapshot {path}: {exc}"
        ) from exc
    committed = StoreVersion(
        version=version,
        filename=path.name,
        fingerprint=relation_fingerprint(reread),
        rows=reread.n_tuples,
    )
    logger.info(
        "committed store snapshot %s (%d rows, fingerprint %s…)",
        path, committed.rows, committed.fingerprint[:12],
    )
    return committed


def prune_store(
    root: str | Path, current: StoreVersion, *, keep: int
) -> list[Path]:
    """Remove snapshots older than the ``keep`` most recent ones.

    Pruning is best-effort (a locked or vanished file is skipped) and
    never touches versions newer than ``current`` minus ``keep``.
    Returns the paths actually removed.
    """
    directory = Path(root) / STORE_DIR
    if not directory.is_dir() or keep < 1:
        return []
    cutoff = current.version - keep
    removed: list[Path] = []
    for entry in sorted(directory.glob("imputed-*.csv")):
        stem = entry.stem.rsplit("-", 1)[-1]
        if not stem.isdigit() or int(stem) > cutoff:
            continue
        try:
            entry.unlink()
        except OSError:  # pragma: no cover - concurrent cleanup
            continue
        removed.append(entry)
    if removed:
        logger.info(
            "pruned %d old store snapshots (keeping %d)",
            len(removed), keep,
        )
    return removed


__all__ = [
    "STORE_DIR",
    "commit_store",
    "load_store_relation",
    "prune_store",
    "store_filename",
    "store_path",
]
