"""repro.pipeline — the crash-safe continuous-ingestion pipeline.

Watermarked FULL/INCR imputation runs over an append-only ingest
directory, driven by a persistent leased run state:

* :mod:`repro.pipeline.state` — the atomic ``state.json`` envelope
  (with ``.prev`` fallback) and the single-writer lease with stale
  takeover;
* :mod:`repro.pipeline.ingest` — sorted ingest scans and deterministic
  batch loading;
* :mod:`repro.pipeline.runs` — per-run artifact directories
  (journal, delta, report, telemetry, manifest);
* :mod:`repro.pipeline.reconcile` — the versioned persistent imputed
  store, committed only after a run completes;
* :mod:`repro.pipeline.runner` — the staged :class:`Pipeline` runner
  gluing it all together, with ``run``/``resume``/``status`` surfaced
  as ``python -m repro pipeline``.

The full lifecycle, watermark semantics and crash-recovery matrix are
documented in ``docs/PIPELINE.md``.
"""

from repro.pipeline.ingest import (
    batch_rows,
    combined_csv_text,
    load_combined,
    scan_ingest,
)
from repro.pipeline.reconcile import (
    commit_store,
    load_store_relation,
    prune_store,
)
from repro.pipeline.runner import Pipeline, PipelineConfig, RunResult
from repro.pipeline.runs import RunDirectory
from repro.pipeline.state import (
    Lease,
    PipelineState,
    RunRecord,
    RunStateStore,
    STATE_VERSION,
    StoreVersion,
    Watermark,
)

__all__ = [
    "Lease",
    "Pipeline",
    "PipelineConfig",
    "PipelineState",
    "RunDirectory",
    "RunRecord",
    "RunResult",
    "RunStateStore",
    "STATE_VERSION",
    "StoreVersion",
    "Watermark",
    "batch_rows",
    "combined_csv_text",
    "commit_store",
    "load_combined",
    "load_store_relation",
    "prune_store",
    "scan_ingest",
]
