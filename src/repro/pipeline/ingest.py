"""Append-only ingest directory scanning and batch loading.

The pipeline's input contract is deliberately narrow: an ingest
directory holds ``*.csv`` files sharing one header; files are only ever
*added*.  Scanning sorts by file name, so a run's input list — and
therefore the combined relation it builds — is a pure function of the
directory's contents, which is what makes a killed run reproducible
from its :class:`~repro.pipeline.state.RunRecord` alone.

Violations of the contract (a watermarked file deleted, a header that
diverges between files) are surfaced as located
:class:`~repro.exceptions.PipelineError`\\ s by the helpers here; the
runner chooses whether that degrades the run to FULL or fails it.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from repro.dataset.attribute import AttributeType
from repro.dataset.csv_io import read_csv_text
from repro.dataset.relation import Relation
from repro.exceptions import PipelineError


def scan_ingest(directory: str | Path) -> list[str]:
    """Names of every ``*.csv`` in ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise PipelineError(
            f"ingest directory {directory} does not exist"
        )
    return sorted(
        entry.name
        for entry in directory.iterdir()
        if entry.is_file() and entry.suffix == ".csv"
    )


def _read_file(directory: Path, name: str) -> str:
    path = directory / name
    try:
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise PipelineError(
            f"cannot read ingest file {path}: {exc}"
        ) from exc


def _header_of(text: str, path: Path) -> list[str]:
    line = text.splitlines()[0] if text.splitlines() else ""
    if not line:
        raise PipelineError(f"ingest file {path} is empty (no header)")
    return next(csv.reader(io.StringIO(line)))


def combined_csv_text(
    directory: str | Path, files: Sequence[str]
) -> str:
    """The concatenation of ``files`` as one CSV (single header).

    Every file's header must equal the first file's, field for field —
    a mismatch is located down to the file name.  The result is byte-
    deterministic in the file order given, which the pipeline always
    derives from a sorted scan.
    """
    directory = Path(directory)
    if not files:
        raise PipelineError(
            f"no ingest files to combine in {directory}"
        )
    pieces: list[str] = []
    expected: list[str] | None = None
    for name in files:
        text = _read_file(directory, name)
        header = _header_of(text, directory / name)
        if expected is None:
            expected = header
            pieces.append(text if text.endswith("\n") else text + "\n")
            continue
        if header != expected:
            raise PipelineError(
                f"ingest file {directory / name} header {header} does "
                f"not match the directory's schema {expected}"
            )
        body = text.split("\n", 1)[1] if "\n" in text else ""
        if body and not body.endswith("\n"):
            body += "\n"
        pieces.append(body)
    return "".join(pieces)


def load_combined(
    directory: str | Path,
    files: Sequence[str],
    *,
    name: str = "ingest",
) -> Relation:
    """All of ``files`` as one relation (types inferred over the whole
    combined data — the FULL-run load path)."""
    return read_csv_text(combined_csv_text(directory, files), name=name)


def batch_rows(
    directory: str | Path,
    files: Sequence[str],
    base: Relation,
) -> list[tuple]:
    """Rows of ``files`` parsed under ``base``'s declared schema.

    The INCR-run load path: new rows must be typed exactly as the
    persistent store's columns are, or the incremental maintenance and
    the imputation engines would compare values across type domains.
    """
    declared: dict[str, AttributeType] = {
        attribute.name: attribute.type
        for attribute in base.attributes
    }
    expected = list(base.attribute_names)
    rows: list[tuple] = []
    for filename in files:
        batch = read_csv_text(
            _read_file(Path(directory), filename),
            name=filename,
            types=declared,
        )
        if list(batch.attribute_names) != expected:
            raise PipelineError(
                f"ingest file {Path(directory) / filename} header "
                f"{list(batch.attribute_names)} does not match the "
                f"store schema {expected}"
            )
        rows.extend(
            batch.row_values(index) for index in range(batch.n_tuples)
        )
    return rows


__all__ = [
    "batch_rows",
    "combined_csv_text",
    "load_combined",
    "scan_ingest",
]
