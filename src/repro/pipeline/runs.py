"""Per-run artifact directories: ``<root>/runs/<run_id>/``.

Every pipeline run — FULL or INCR, fresh or resumed — gets one
directory holding its complete audit trail:

``journal.jsonl``
    The imputation checkpoint journal (appended live; the crash-safe
    replay prefix).
``delta.csv``
    The rows this run added to the persistent store, imputed (for a
    FULL run: the whole store).
``report.json``
    The run's :class:`~repro.core.report.ImputationReport` digest plus
    pipeline framing (mode, files, degradation).
``trace.jsonl`` / ``metrics.prom``
    The run's telemetry exports.
``MANIFEST.json``
    Written last, atomically — its presence marks the artifact set
    complete.  (The *commit point* of a run is the state envelope, not
    the manifest; a run directory without a manifest is a crashed run's
    debris, kept for forensics.)

All writes go through :func:`repro.utils.atomic.atomic_write_text`
except the journal, which is append-only by design.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.report import ImputationReport
from repro.dataset.csv_io import write_csv
from repro.dataset.relation import Relation
from repro.telemetry import Telemetry, write_metrics, write_trace
from repro.utils.atomic import atomic_write_text


class RunDirectory:
    """The artifact directory of one pipeline run."""

    def __init__(self, root: str | Path, run_id: str) -> None:
        self.run_id = run_id
        self.path = Path(root) / "runs" / run_id
        self.path.mkdir(parents=True, exist_ok=True)

    # -- well-known artifact paths -------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.path / "journal.jsonl"

    @property
    def delta_path(self) -> Path:
        return self.path / "delta.csv"

    @property
    def report_path(self) -> Path:
        return self.path / "report.json"

    @property
    def trace_path(self) -> Path:
        return self.path / "trace.jsonl"

    @property
    def metrics_path(self) -> Path:
        return self.path / "metrics.prom"

    @property
    def manifest_path(self) -> Path:
        return self.path / "MANIFEST.json"

    # -- writers ---------------------------------------------------------
    def write_delta(self, delta: Relation) -> Path:
        """Persist the run's imputed delta rows."""
        write_csv(delta, self.delta_path)
        return self.delta_path

    def write_report(
        self, report: ImputationReport, **framing: Any
    ) -> Path:
        """Persist the run's report digest plus pipeline framing."""
        payload: dict[str, Any] = {
            "run_id": self.run_id,
            "outcomes": len(report),
            "imputed": report.imputed_count,
            "filled": report.filled_count,
            "unimputed": report.unimputed_count,
            "replayed": report.replayed_count,
            "degradations": len(report.degradations),
            "budget_events": len(report.budget_events),
            "elapsed_seconds": report.elapsed_seconds,
            "status_counts": report.status_counts(),
        }
        payload.update(framing)
        atomic_write_text(
            self.report_path,
            json.dumps(payload, ensure_ascii=False, indent=2),
        )
        return self.report_path

    def export_telemetry(self, telemetry: Telemetry) -> None:
        """Write the run's trace and metrics snapshot (live spines
        only; the null spine exports nothing)."""
        if not telemetry.enabled:
            return
        if telemetry.tracer.enabled:
            write_trace(telemetry.tracer, self.trace_path)
        if telemetry.metrics.enabled:
            write_metrics(telemetry.metrics, self.metrics_path)

    def write_manifest(self, **entries: Any) -> Path:
        """Mark the artifact set complete (written last, atomically)."""
        atomic_write_text(
            self.manifest_path,
            json.dumps(
                {"run_id": self.run_id, **entries},
                ensure_ascii=False, indent=2,
            ),
        )
        return self.manifest_path


__all__ = ["RunDirectory"]
