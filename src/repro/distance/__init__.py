"""Distance layer: per-type distance functions and tuple-pair patterns."""

from repro.distance.extra import (
    jaro_similarity,
    jaro_winkler_distance,
    jaro_winkler_function,
    jaro_winkler_similarity,
    relative_difference,
    relative_difference_function,
    token_jaccard_distance,
    token_jaccard_function,
)
from repro.distance.base import (
    DistanceFunction,
    absolute_difference,
    boolean_equality,
    distance_for_type,
    string_edit_distance,
)
from repro.distance.kernels import DonorScanKernels
from repro.distance.levenshtein import (
    levenshtein,
    levenshtein_bounded,
    normalized_levenshtein,
)
from repro.distance.pattern import DistancePattern, PatternCalculator

__all__ = [
    "DistanceFunction",
    "DistancePattern",
    "DonorScanKernels",
    "PatternCalculator",
    "absolute_difference",
    "boolean_equality",
    "distance_for_type",
    "jaro_similarity",
    "jaro_winkler_distance",
    "jaro_winkler_function",
    "jaro_winkler_similarity",
    "levenshtein",
    "levenshtein_bounded",
    "normalized_levenshtein",
    "relative_difference",
    "relative_difference_function",
    "string_edit_distance",
    "token_jaccard_distance",
    "token_jaccard_function",
]
