"""Additional distance functions for RFDc constraints.

Definition 3.2 permits *any* similarity/distance function per attribute;
the core defaults (edit distance / absolute difference / equality) come
from the paper, but real deployments often want domain-specific ones.
This module ships three and they plug into
:class:`~repro.distance.pattern.PatternCalculator` via ``overrides``:

* :func:`jaro_winkler_distance` — 1 - Jaro-Winkler similarity; better
  than raw edit distance for person/organization names where common
  prefixes matter.  Thresholds live in [0, 1].
* :func:`token_jaccard_distance` — 1 - Jaccard similarity of the token
  sets; robust to word reordering ("Main Chinois" vs "Chinois Main").
* :func:`relative_difference` — |a-b| / max(|a|,|b|); a scale-free
  numeric distance so one threshold works for Weight (thousands) and
  RI (hundredths) alike.
"""

from __future__ import annotations

from repro.distance.base import DistanceFunction


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in [0, 1] (1 = equal)."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if not len_a or not len_b:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)

    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        low = max(0, i - window)
        high = min(len_b, i + window + 1)
        for j in range(low, high):
            if not matched_b[j] and b[j] == char_a:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Standard transposition count: compare the matched characters of
    # both strings in their own orders; half the mismatching positions.
    sequence_a = [a[i] for i in range(len_a) if matched_a[i]]
    sequence_b = [b[j] for j in range(len_b) if matched_b[j]]
    half_transpositions = sum(
        1 for char_a, char_b in zip(sequence_a, sequence_b)
        if char_a != char_b
    )
    transpositions = half_transpositions / 2.0

    m = float(matches)
    return (
        m / len_a + m / len_b + (m - transpositions) / m
    ) / 3.0


def jaro_winkler_similarity(
    a: str, b: str, *, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the common prefix."""
    if not 0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:max_prefix], b[:max_prefix]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def jaro_winkler_distance(a: object, b: object) -> float:
    """``1 - JaroWinkler`` on the string renderings, in [0, 1]."""
    return 1.0 - jaro_winkler_similarity(str(a), str(b))


def token_jaccard_distance(a: object, b: object) -> float:
    """``1 - |A ∩ B| / |A ∪ B|`` over lower-cased whitespace tokens.

    Two empty values are identical (distance 0); an empty vs non-empty
    value is maximally distant.
    """
    tokens_a = set(str(a).lower().split())
    tokens_b = set(str(b).lower().split())
    if not tokens_a and not tokens_b:
        return 0.0
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return 1.0 - len(tokens_a & tokens_b) / len(union)


def relative_difference(a: float, b: float) -> float:
    """``|a - b| / max(|a|, |b|)`` in [0, 1] (0 for two zeros)."""
    x, y = float(a), float(b)
    denominator = max(abs(x), abs(y))
    if denominator == 0:
        return 0.0
    return abs(x - y) / denominator


def jaro_winkler_function(*, cached: bool = True) -> DistanceFunction:
    """A ready-to-use override for name-like attributes."""
    return DistanceFunction(
        "jaro_winkler", jaro_winkler_distance, cached=cached
    )


def token_jaccard_function(*, cached: bool = True) -> DistanceFunction:
    """A ready-to-use override for multi-word text attributes."""
    return DistanceFunction(
        "token_jaccard", token_jaccard_distance, cached=cached
    )


def relative_difference_function() -> DistanceFunction:
    """A ready-to-use override for scale-free numeric attributes."""
    return DistanceFunction(
        "relative_difference", relative_difference, cached=False
    )
