"""Distance patterns between tuple pairs (Definition 5.4 of the paper).

A *distance pattern* ``p`` for a tuple pair ``(t, t_j)`` holds, for every
attribute ``A_i``, either the distance ``delta_{A_i}(t[A_i], t_j[A_i])`` or
the missing marker ``_`` when either side is missing.

:class:`PatternCalculator` binds a relation to one distance function per
attribute (the paper's defaults unless overridden) and computes patterns on
demand.  Value-pair memoization inside each
:class:`~repro.distance.base.DistanceFunction` keeps repeated pair loops
cheap.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.dataset.missing import MISSING, MissingType, is_missing
from repro.dataset.relation import Relation
from repro.distance.base import DistanceFunction, distance_for_type
from repro.exceptions import SchemaError


class DistancePattern(Mapping[str, "float | MissingType"]):
    """The per-attribute distances of one tuple pair.

    Behaves as a read-only mapping from attribute name to distance (or
    :data:`MISSING`).  Attributes that were not requested when the pattern
    was computed raise ``KeyError`` on access, which catches accidental
    use of partial patterns.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, float | MissingType]) -> None:
        self._values = dict(values)

    def __getitem__(self, name: str) -> float | MissingType:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def is_missing_on(self, name: str) -> bool:
        """Whether the pattern is ``_`` on the given attribute."""
        return is_missing(self._values[name])

    def within(self, name: str, threshold: float) -> bool:
        """Whether the pair is comparable and within ``threshold`` on
        ``name`` — the satisfaction test used for RFD constraints."""
        value = self._values[name]
        if is_missing(value):
            return False
        return float(value) <= threshold

    def mean_over(self, names: Iterable[str]) -> float:
        """Average distance over ``names`` (Equation 2's numerator/|X|).

        Raises ``ValueError`` if any requested attribute is missing in the
        pattern; callers must check satisfaction first.
        """
        values = self._values
        total = 0.0
        count = 0
        for name in names:
            value = values[name]
            if is_missing(value):
                raise ValueError(
                    f"pattern is missing on {name!r}; cannot average"
                )
            total += value
            count += 1
        if not count:
            raise ValueError("mean_over needs at least one attribute")
        return total / count

    def as_vector(self, order: Iterable[str]) -> tuple[Any, ...]:
        """The pattern as a tuple in the given attribute order, using
        ``_`` for missing entries — the paper's ``[7, _, 0, _, 0]`` form."""
        return tuple(self._values[name] for name in order)

    def __repr__(self) -> str:
        cells = ", ".join(
            f"{name}={'_' if is_missing(v) else v}"
            for name, v in self._values.items()
        )
        return f"DistancePattern({cells})"


class PatternCalculator:
    """Compute distance patterns over one relation.

    Parameters
    ----------
    relation:
        The instance to compare tuples of.  The calculator reads cells
        live, so patterns computed after an imputation see the new value.
    overrides:
        Optional per-attribute distance functions replacing the paper's
        defaults (edit distance / absolute difference / equality).
    cached:
        Whether per-value-pair memoization is enabled.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        overrides: Mapping[str, DistanceFunction] | None = None,
        cached: bool = True,
    ) -> None:
        self.relation = relation
        self._functions: dict[str, DistanceFunction] = {}
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(relation.attribute_names)
        if unknown:
            raise SchemaError(
                f"distance overrides for unknown attributes {sorted(unknown)}"
            )
        for attr in relation.attributes:
            self._functions[attr.name] = overrides.get(
                attr.name, distance_for_type(attr.type, cached=cached)
            )
        # Direct references to the relation's column lists: cell reads in
        # the O(n^2) pair loops bypass per-call bounds checking.  The
        # lists are mutated in place by Relation.set_value, so the
        # references stay live across imputations.
        self._columns: dict[str, list] = {
            name: relation._columns[name]  # noqa: SLF001 - same package
            for name in relation.attribute_names
        }

    def function_for(self, name: str) -> DistanceFunction:
        """The distance function bound to attribute ``name``."""
        try:
            return self._functions[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def distance(self, row_a: int, row_b: int,
                 name: str) -> float | MissingType:
        """Distance between two tuples on one attribute, or ``_``."""
        try:
            column = self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None
        value_a = column[row_a]
        value_b = column[row_b]
        # Stored missing values are always the canonical MISSING object
        # (Relation normalizes on construction and on set_value), so an
        # identity check suffices here.
        if value_a is MISSING or value_b is MISSING:
            return MISSING
        return self._functions[name](value_a, value_b)

    def value_distance(self, name: str, value_a: Any,
                       value_b: Any) -> float | MissingType:
        """Distance between two raw values under ``name``'s function."""
        if is_missing(value_a) or is_missing(value_b):
            return MISSING
        return self.function_for(name)(value_a, value_b)

    def pattern(
        self,
        row_a: int,
        row_b: int,
        attributes: Iterable[str] | None = None,
    ) -> DistancePattern:
        """The distance pattern of a tuple pair (Definition 5.4).

        ``attributes`` restricts the pattern to a subset — RENUVER's inner
        loops only ever need the LHS/RHS attributes of the RFDs in play,
        so partial patterns avoid needless string comparisons.
        """
        names = (
            attributes
            if attributes is not None
            else self.relation.attribute_names
        )
        columns = self._columns
        functions = self._functions
        values: dict[str, float | MissingType] = {}
        try:
            for name in names:
                column = columns[name]
                value_a = column[row_a]
                value_b = column[row_b]
                if value_a is MISSING or value_b is MISSING:
                    values[name] = MISSING
                else:
                    values[name] = functions[name](value_a, value_b)
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {exc.args[0]!r}") from None
        return DistancePattern(values)

    def clear_caches(self) -> None:
        """Drop all per-attribute memo tables."""
        for function in self._functions.values():
            function.clear_cache()

    def cache_report(self) -> dict[str, tuple[int, int, int]]:
        """Per-attribute ``(hits, misses, size)`` memoization statistics."""
        return {
            name: function.cache_info
            for name, function in self._functions.items()
        }
