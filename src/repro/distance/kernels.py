"""Columnar one-vs-all distance kernels for the donor-scan engine.

The scalar imputation path evaluates distances pair-by-pair, building one
:class:`~repro.distance.pattern.DistancePattern` dict per tuple pair.
:class:`DonorScanKernels` instead answers the question the hot loops
actually ask — "how far is the target cell from *every* cell of this
column?" — with one numpy vector per (target row, attribute):

* numeric attributes: one vectorized ``|column - target|``,
* boolean attributes: the same over a 0/1 encoding,
* string attributes: one banded Levenshtein DP per *distinct* column
  value, clamped at the largest threshold any RFD applies to the
  attribute, with a length-difference pre-filter (``|len(a) - len(b)| >
  limit`` implies ``distance > limit``) that skips the DP entirely for
  far-away donors.

Entries are ``NaN`` wherever either side of the pair is missing — the
vector analogue of the ``_`` entries of a distance pattern.

Vectors are cached per (target row, attribute).  Correctness across the
driver's tentative write / rollback cycle relies on the *dirty-cell
hook*: :meth:`attach` registers a mutation listener on the relation, and
every :meth:`~repro.dataset.relation.Relation.set_value` drops the cached
vectors of the written attribute and patches the column codec in place.
Counters for vector builds, invalidations and the DPs avoided by length
blocking are exposed via :attr:`counters` for the imputation report.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from repro.dataset.attribute import AttributeType
from repro.dataset.missing import MISSING
from repro.dataset.relation import Relation
from repro.distance.base import DistanceFunction
from repro.distance.levenshtein import levenshtein, levenshtein_bounded
from repro.exceptions import SchemaError


class _NumericCodec:
    """Float64 encoding of a numeric or boolean column (``NaN`` missing)."""

    __slots__ = ("codes", "_convert")

    def __init__(self, column: list[Any],
                 convert: Callable[[Any], float]) -> None:
        self._convert = convert
        self.codes = np.array(
            [math.nan if value is MISSING else convert(value)
             for value in column],
            dtype=np.float64,
        )

    def update(self, row: int, value: Any) -> None:
        self.codes[row] = (
            math.nan if value is MISSING else self._convert(value)
        )

    def present_mask(self) -> np.ndarray:
        return ~np.isnan(self.codes)

    def target_vector(self, target_row: int) -> np.ndarray:
        target = self.codes[target_row]
        if math.isnan(target):
            return np.full(self.codes.shape, np.nan)
        return np.abs(self.codes - target)


class _StringCodec:
    """String column as rendered values plus a distinct-value row index.

    Grouping rows by distinct value means the (expensive) edit-distance
    DP runs once per distinct donor value, not once per row; the result
    is scattered back to all rows sharing the value.
    """

    __slots__ = ("values", "present", "rows_by_value")

    def __init__(self, column: list[Any]) -> None:
        self.values: list[str | None] = [
            None if value is MISSING else str(value) for value in column
        ]
        self.present = np.array(
            [value is not None for value in self.values], dtype=bool
        )
        self.rows_by_value: dict[str, list[int]] = {}
        for row, value in enumerate(self.values):
            if value is not None:
                self.rows_by_value.setdefault(value, []).append(row)

    def update(self, row: int, value: Any) -> None:
        old = self.values[row]
        if old is not None:
            rows = self.rows_by_value[old]
            rows.remove(row)
            if not rows:
                del self.rows_by_value[old]
        new = None if value is MISSING else str(value)
        self.values[row] = new
        self.present[row] = new is not None
        if new is not None:
            self.rows_by_value.setdefault(new, []).append(row)


class _GenericCodec:
    """Fallback for attributes with overridden distance functions.

    Still produces a one-vs-all vector (so the engine code stays uniform)
    but computes each entry through the bound
    :class:`~repro.distance.base.DistanceFunction`, preserving whatever
    semantics the override implements.
    """

    __slots__ = ("column", "function")

    def __init__(self, column: list[Any], function: DistanceFunction) -> None:
        self.column = column  # live reference; Relation mutates in place
        self.function = function

    def update(self, row: int, value: Any) -> None:
        pass  # the live column reference already reflects the write

    def present_mask(self) -> np.ndarray:
        return np.array(
            [value is not MISSING for value in self.column], dtype=bool
        )

    def target_vector(self, target_row: int) -> np.ndarray:
        out = np.full(len(self.column), np.nan)
        target = self.column[target_row]
        if target is MISSING:
            return out
        function = self.function
        for row, value in enumerate(self.column):
            if value is not MISSING:
                out[row] = function(target, value)
        return out


class DonorScanKernels:
    """One-vs-all distance vectors over one relation, cached and
    invalidated through the relation's dirty-cell hook.

    Parameters
    ----------
    relation:
        The instance the vectors read from.
    string_limits:
        Per-attribute clamp for string distances: the largest threshold
        any RFD constrains the attribute with.  Distances above the limit
        are stored as ``limit + 1`` — exact for every comparison the
        engine performs, and the enabler of length blocking.  Attributes
        absent from the mapping fall back to the exact (unbounded) DP.
    overrides:
        Distance functions for attributes that must not use the paper's
        default kernels; these take the generic per-row path.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        string_limits: Mapping[str, float] | None = None,
        overrides: Mapping[str, DistanceFunction] | None = None,
    ) -> None:
        self._relation = relation
        self._overrides = dict(overrides or {})
        unknown = set(self._overrides) - set(relation.attribute_names)
        if unknown:
            raise SchemaError(
                f"kernel overrides for unknown attributes {sorted(unknown)}"
            )
        self._string_limits: dict[str, int] = {
            name: int(math.ceil(float(limit)))
            for name, limit in (string_limits or {}).items()
        }
        self._codecs: dict[str, Any] = {}
        self._vectors: dict[str, dict[int, np.ndarray]] = {}
        self._string_memo: dict[str, dict[tuple[str, str], float]] = {}
        self._memo_hits: dict[str, int] = {}
        self._attached = False
        self.vector_builds = 0
        self.vector_cache_hits = 0
        self.invalidations = 0
        self.subset_builds = 0
        self.levenshtein_dp_calls = 0
        self.levenshtein_dp_blocked = 0

    # ------------------------------------------------------------------
    # Dirty-cell hook
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register the dirty-cell hook on the relation."""
        if not self._attached:
            self._relation.add_mutation_listener(self._on_set_value)
            self._attached = True

    def close(self) -> None:
        """Unregister the dirty-cell hook (idempotent)."""
        if self._attached:
            self._relation.remove_mutation_listener(self._on_set_value)
            self._attached = False

    def _on_set_value(self, row: int, name: str, value: Any) -> None:
        vectors = self._vectors.get(name)
        if vectors:
            vectors.clear()
            self.invalidations += 1
        codec = self._codecs.get(name)
        if codec is not None:
            codec.update(row, value)

    # ------------------------------------------------------------------
    # Kernel evaluation
    # ------------------------------------------------------------------
    def vector(self, target_row: int, name: str) -> np.ndarray:
        """Distances from cell ``(target_row, name)`` to the whole column.

        ``NaN`` marks pairs where either side is missing (including the
        whole vector when the target cell itself is missing).  The entry
        at ``target_row`` is the self-distance; callers mask it out.
        Cached per (target row, attribute) until the column is written.
        """
        cache = self._vectors.setdefault(name, {})
        vector = cache.get(target_row)
        if vector is not None:
            self.vector_cache_hits += 1
            return vector
        codec = self._codec(name)
        if isinstance(codec, _StringCodec):
            vector = self._string_vector(codec, target_row, name)
        else:
            vector = codec.target_vector(target_row)
        self.vector_builds += 1
        cache[target_row] = vector
        return vector

    def subset_vector(
        self, target_row: int, name: str, rows: np.ndarray
    ) -> np.ndarray:
        """Distances from cell ``(target_row, name)`` to ``rows`` only.

        The blocked engine's narrow sibling of :meth:`vector`: entry
        ``i`` equals ``vector(target_row, name)[rows[i]]`` bit for bit
        (same clamps, same memo, same float operations per element), but
        only the requested rows are ever touched — the point of probing
        an index first.  Results are not cached: candidate sets change
        per RFD, and the string memo already absorbs the expensive part.
        """
        self.subset_builds += 1
        codec = self._codec(name)
        if isinstance(codec, _StringCodec):
            return self._string_subset(codec, target_row, name, rows)
        if isinstance(codec, _NumericCodec):
            target = codec.codes[target_row]
            if math.isnan(target):
                return np.full(rows.shape, np.nan)
            return np.abs(codec.codes[rows] - target)
        out = np.full(rows.shape, np.nan)
        target = codec.column[target_row]
        if target is MISSING:
            return out
        function = codec.function
        for position, row in enumerate(rows):
            value = codec.column[row]
            if value is not MISSING:
                out[position] = function(target, value)
        return out

    def present_mask(self, name: str) -> np.ndarray:
        """Boolean mask of rows with a present value on ``name``.

        The returned array may be shared internal state on some paths;
        callers must not mutate it.
        """
        codec = self._codec(name)
        if isinstance(codec, _StringCodec):
            return codec.present
        return codec.present_mask()

    def clear_target_vectors(self) -> None:
        """Drop every cached vector (cell-lifetime boundary)."""
        for cache in self._vectors.values():
            cache.clear()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, int]:
        """Kernel counters for the imputation report."""
        return {
            "vector_builds": self.vector_builds,
            "vector_cache_hits": self.vector_cache_hits,
            "invalidations": self.invalidations,
            "subset_builds": self.subset_builds,
            "levenshtein_dp_calls": self.levenshtein_dp_calls,
            "levenshtein_dp_blocked": self.levenshtein_dp_blocked,
        }

    def cache_report(self) -> dict[str, tuple[int, int, int]]:
        """Per-attribute ``(hits, misses, size)`` of the string memos —
        the kernel counterpart of ``PatternCalculator.cache_report``."""
        return {
            name: (
                self._memo_hits.get(name, 0),
                len(memo),
                len(memo),
            )
            for name, memo in self._string_memo.items()
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _codec(self, name: str) -> Any:
        codec = self._codecs.get(name)
        if codec is not None:
            return codec
        attribute = self._relation.attribute(name)  # raises on unknown
        column = self._relation._columns[name]  # noqa: SLF001 - same package
        if name in self._overrides:
            codec = _GenericCodec(column, self._overrides[name])
        elif attribute.type.is_numeric:
            codec = _NumericCodec(column, float)
        elif attribute.type is AttributeType.BOOLEAN:
            codec = _NumericCodec(column, lambda value: float(bool(value)))
        else:
            codec = _StringCodec(column)
        self._codecs[name] = codec
        return codec

    def _string_vector(
        self, codec: _StringCodec, target_row: int, name: str
    ) -> np.ndarray:
        out = np.full(len(codec.values), np.nan)
        target = codec.values[target_row]
        if target is None:
            return out
        limit = self._string_limits.get(name)
        memo = self._string_memo.setdefault(name, {})
        target_length = len(target)
        hits = 0
        for value, rows in codec.rows_by_value.items():
            key = (target, value) if target <= value else (value, target)
            distance = memo.get(key)
            if distance is None:
                if limit is None:
                    distance = float(levenshtein(target, value))
                    self.levenshtein_dp_calls += 1
                elif abs(len(value) - target_length) > limit:
                    distance = float(limit + 1)
                    self.levenshtein_dp_blocked += 1
                else:
                    distance = float(
                        levenshtein_bounded(target, value, limit)
                    )
                    self.levenshtein_dp_calls += 1
                memo[key] = distance
            else:
                hits += 1
            out[rows] = distance
        if hits:
            self._memo_hits[name] = self._memo_hits.get(name, 0) + hits
        return out

    def _string_subset(
        self,
        codec: _StringCodec,
        target_row: int,
        name: str,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Per-row string distances, sharing :meth:`_string_vector`'s
        memo and clamp so each entry is the same float the full vector
        would hold."""
        out = np.full(rows.shape, np.nan)
        target = codec.values[target_row]
        if target is None:
            return out
        limit = self._string_limits.get(name)
        memo = self._string_memo.setdefault(name, {})
        target_length = len(target)
        hits = 0
        local: dict[str, float] = {}
        for position, row in enumerate(rows):
            value = codec.values[row]
            if value is None:
                continue
            distance = local.get(value)
            if distance is None:
                key = (
                    (target, value) if target <= value
                    else (value, target)
                )
                distance = memo.get(key)
                if distance is None:
                    if limit is None:
                        distance = float(levenshtein(target, value))
                        self.levenshtein_dp_calls += 1
                    elif abs(len(value) - target_length) > limit:
                        distance = float(limit + 1)
                        self.levenshtein_dp_blocked += 1
                    else:
                        distance = float(
                            levenshtein_bounded(target, value, limit)
                        )
                        self.levenshtein_dp_calls += 1
                    memo[key] = distance
                else:
                    hits += 1
                local[value] = distance
            out[position] = distance
        if hits:
            self._memo_hits[name] = self._memo_hits.get(name, 0) + hits
        return out
