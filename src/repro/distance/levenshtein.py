"""Levenshtein (edit) distance.

RENUVER compares string attributes with the edit distance.  Two variants
are provided:

* :func:`levenshtein` — the exact distance, classic two-row DP.
* :func:`levenshtein_bounded` — a banded DP that stops as soon as the
  distance provably exceeds ``limit`` and returns ``limit + 1`` instead.

The bounded variant matters for performance: RFD thresholds are small
(the paper's discovery limits are 3..15), so most of the O(len(a)·len(b))
work of the exact DP is wasted on pairs that are "far anyway".

:data:`BOUNDED_STATS` counts, process-wide, how often the bounded
variant's *length filter* settled a call before any DP row was allocated
— the cheapest exit there is, and the same inequality the blocking
indexes of :mod:`repro.index` exploit.  Consumers that need per-run
numbers (the kernel-call seam) snapshot the totals and report deltas.
"""

from __future__ import annotations


class _BoundedStats:
    """Process-wide tallies of :func:`levenshtein_bounded` early exits."""

    __slots__ = ("calls", "length_filtered")

    def __init__(self) -> None:
        self.calls = 0
        self.length_filtered = 0

    def snapshot(self) -> tuple[int, int]:
        """The current ``(calls, length_filtered)`` totals."""
        return (self.calls, self.length_filtered)


#: Process-wide counters (single snapshot point for all engines).
BOUNDED_STATS = _BoundedStats()


def levenshtein(a: str, b: str) -> int:
    """Exact edit distance between two strings (insert/delete/substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost, # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_bounded(a: str, b: str, limit: int) -> int:
    """Edit distance clamped at ``limit``.

    Returns the exact distance when it is ``<= limit`` and ``limit + 1``
    otherwise.  Uses the standard diagonal band of width ``2*limit + 1``:
    cells outside the band can only lie on paths costing more than
    ``limit``, so they are never inspected.

    Every early exit runs *before* any DP row is allocated, in cheapest
    order: the length filter (``|len(a) - len(b)| > limit`` forces at
    least that many insertions, so the distance provably exceeds the
    limit), then the equality check, then the empty-string shortcut.
    Length-filter exits are tallied in :data:`BOUNDED_STATS`.
    """
    if limit < 0:
        raise ValueError("limit must be non-negative")
    stats = BOUNDED_STATS
    stats.calls += 1
    if len(a) < len(b):
        a, b = b, a
    len_a, len_b = len(a), len(b)
    if len_a - len_b > limit:
        stats.length_filtered += 1
        return limit + 1
    if a == b:
        return 0
    if not len_b:
        return len_a if len_a <= limit else limit + 1

    big = limit + 1
    previous = [j if j <= limit else big for j in range(len_b + 1)]
    for i in range(1, len_a + 1):
        low = max(1, i - limit)
        high = min(len_b, i + limit)
        current = [big] * (len_b + 1)
        if low == 1:
            current[0] = i if i <= limit else big
        char_a = a[i - 1]
        row_min = current[0] if low == 1 else big
        for j in range(low, high + 1):
            cost = 0 if char_a == b[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            if best > limit:
                best = big
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min >= big:
            return big
        previous = current
    return previous[len_b] if previous[len_b] <= limit else big


def normalized_levenshtein(a: str, b: str) -> float:
    """Length-normalized edit distance in [0, 1] (Yujian & Bo, 2007 style).

    Not used by the core algorithm (the paper's thresholds are absolute),
    but handy for rule-based evaluation and examples.
    """
    if not a and not b:
        return 0.0
    distance = levenshtein(a, b)
    return (2 * distance) / (len(a) + len(b) + distance)
