"""Distance-function abstraction and the per-type default registry.

The paper fixes one distance function per attribute domain (Section 5.3):
absolute difference for numbers, edit distance for strings, equality for
booleans.  :func:`distance_for_type` encodes that choice; callers can
override it per attribute when building a
:class:`~repro.distance.pattern.PatternCalculator`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dataset.attribute import AttributeType
from repro.dataset.missing import is_missing
from repro.exceptions import DataError


class DistanceFunction:
    """A named, symmetric distance over one attribute domain.

    Wraps a plain callable ``(a, b) -> float`` and optionally memoizes it
    on the (unordered) value pair.  Memoization is the main lever against
    RENUVER's O(n^2) pair loops: real columns contain few distinct values,
    so most pair distances repeat.
    """

    __slots__ = ("name", "_func", "_cache", "_hits", "_misses")

    def __init__(
        self,
        name: str,
        func: Callable[[Any, Any], float],
        *,
        cached: bool = True,
    ) -> None:
        self.name = name
        self._func = func
        self._cache: dict[tuple[Any, Any], float] | None = (
            {} if cached else None
        )
        self._hits = 0
        self._misses = 0

    def __call__(self, a: Any, b: Any) -> float:
        if is_missing(a) or is_missing(b):
            raise DataError(
                f"distance {self.name!r} applied to a missing value"
            )
        if self._cache is None:
            return self._func(a, b)
        try:
            key = (a, b) if a <= b else (b, a)
        except TypeError:  # mixed-type column: fall back to a stable key
            key = (
                (a, b)
                if _orderable_key(a) <= _orderable_key(b)
                else (b, a)
            )
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        value = self._func(a, b)
        self._cache[key] = value
        return value

    @property
    def cache_info(self) -> tuple[int, int, int]:
        """``(hits, misses, size)`` of the memo table (zeros if disabled)."""
        if self._cache is None:
            return (0, 0, 0)
        return (self._hits, self._misses, len(self._cache))

    def clear_cache(self) -> None:
        """Drop all memoized distances."""
        if self._cache is not None:
            self._cache.clear()
            self._hits = 0
            self._misses = 0

    def __repr__(self) -> str:
        return f"DistanceFunction({self.name!r})"


def _orderable_key(value: Any) -> tuple[str, str]:
    """A total order over mixed-type values, for symmetric cache keys."""
    return (type(value).__name__, str(value))


def absolute_difference(a: float, b: float) -> float:
    """``|a - b|`` — the paper's numeric distance."""
    return abs(float(a) - float(b))


def boolean_equality(a: bool, b: bool) -> float:
    """0 when equal, 1 otherwise — the paper's boolean distance."""
    return 0.0 if bool(a) == bool(b) else 1.0


def string_edit_distance(a: Any, b: Any) -> float:
    """Edit distance on the string renderings of the values."""
    from repro.distance.levenshtein import levenshtein

    return float(levenshtein(str(a), str(b)))


def distance_for_type(
    attr_type: AttributeType, *, cached: bool = True
) -> DistanceFunction:
    """The paper's default distance for an attribute type.

    Numeric and boolean distances are never memoized: computing them is
    cheaper than the cache lookup.  ``cached`` therefore only controls
    the (expensive) string edit distance.
    """
    if attr_type.is_numeric:
        return DistanceFunction(
            "absolute_difference", absolute_difference, cached=False
        )
    if attr_type is AttributeType.BOOLEAN:
        return DistanceFunction(
            "boolean_equality", boolean_equality, cached=False
        )
    return DistanceFunction(
        "edit_distance", string_edit_distance, cached=cached
    )
