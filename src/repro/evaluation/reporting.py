"""Serialization of experiment results: JSON archives, Markdown tables.

The benchmark harness uses these to persist runs in a machine-readable
form and to regenerate the EXPERIMENTS.md tables; downstream users get a
stable format for their own sweeps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.evaluation.metrics import Scores
from repro.evaluation.runner import ExperimentResult, RunRecord
from repro.exceptions import EvaluationError


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-ready representation of an :class:`ExperimentResult`."""
    return {
        "approach": result.approach,
        "records": [
            {
                "rate": record.rate,
                "variant": record.variant,
                "status": record.status,
                "elapsed_seconds": record.elapsed_seconds,
                "peak_bytes": record.peak_bytes,
                "error": record.error,
                "scores": (
                    {
                        "missing": record.scores.missing,
                        "imputed": record.scores.imputed,
                        "correct": record.scores.correct,
                    }
                    if record.scores is not None
                    else None
                ),
            }
            for record in result.records
        ],
    }


def result_from_dict(data: Mapping) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    try:
        result = ExperimentResult(approach=data["approach"])
        for entry in data["records"]:
            scores = entry.get("scores")
            result.records.append(
                RunRecord(
                    rate=float(entry["rate"]),
                    variant=int(entry["variant"]),
                    scores=(
                        Scores(
                            missing=scores["missing"],
                            imputed=scores["imputed"],
                            correct=scores["correct"],
                        )
                        if scores is not None
                        else None
                    ),
                    elapsed_seconds=float(entry["elapsed_seconds"]),
                    peak_bytes=int(entry["peak_bytes"]),
                    status=entry.get("status", "ok"),
                    error=entry.get("error"),
                )
            )
        return result
    except (KeyError, TypeError, ValueError) as exc:
        raise EvaluationError(
            f"malformed experiment-result data: {exc}"
        ) from exc


def save_results(
    results: Mapping[str, ExperimentResult], path: str | Path
) -> None:
    """Write a multi-approach comparison to a JSON file."""
    payload = {
        approach: result_to_dict(result)
        for approach, result in results.items()
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_results(path: str | Path) -> dict[str, ExperimentResult]:
    """Inverse of :func:`save_results`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise EvaluationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise EvaluationError(f"{path}: top level must be an object")
    return {
        approach: result_from_dict(data)
        for approach, data in payload.items()
    }


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def markdown_comparison(
    results: Mapping[str, ExperimentResult],
    rates: Sequence[float],
    *,
    metrics: Sequence[str] = ("precision", "recall", "f1"),
) -> str:
    """A GitHub-flavoured Markdown table of a multi-approach comparison.

    One row per approach, one column group per rate; budget-limited
    cells render as their status (``TL``/``ML``/``error``).
    """
    if not results:
        raise EvaluationError("markdown_comparison needs results")
    header_cells = ["approach"]
    for rate in rates:
        for metric in metrics:
            header_cells.append(f"{metric[0].upper()}@{rate:.0%}")
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join(["---"] * len(header_cells)) + "|",
    ]
    for approach, result in results.items():
        row = [approach]
        for rate in rates:
            if result.status_at(rate) != "ok":
                row.extend([result.status_at(rate)] * len(metrics))
                continue
            scores = result.mean_scores(rate)
            row.extend(
                f"{getattr(scores, metric):.3f}" for metric in metrics
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def markdown_resource_table(
    results: Mapping[str, ExperimentResult],
    rates: Sequence[float],
) -> str:
    """Markdown table of wall time / peak memory per approach and rate,
    the shape of the paper's Tables 4-5."""
    from repro.utils.memory import format_bytes
    from repro.utils.timer import format_duration

    lines = [
        "| approach | rate | recall | precision | F1 | time | memory |",
        "|---|---|---|---|---|---|---|",
    ]
    for approach, result in results.items():
        for rate in rates:
            status = result.status_at(rate)
            if status != "ok":
                lines.append(
                    f"| {approach} | {rate:.0%} | {status} | - | - | - "
                    f"| - |"
                )
                continue
            scores = result.mean_scores(rate)
            lines.append(
                f"| {approach} | {rate:.0%} | {scores.recall:.3f} "
                f"| {scores.precision:.3f} | {scores.f1:.3f} "
                f"| {format_duration(result.mean_elapsed(rate))} "
                f"| {format_bytes(result.max_peak_bytes(rate))} |"
            )
    return "\n".join(lines)
