"""Error analysis of imputation results.

The paper's rule-based validator answers *whether* an imputation counts;
this module answers *why*: for every injected cell the outcome is
classified as

* ``exact``      — byte/number-identical to the ground truth,
* ``rule``       — different representation accepted by a rule (the
  phone-separator / city-alias / numeric-delta cases of Section 6.1),
* ``wrong``      — filled with a value the validator rejects,
* ``unimputed``  — left missing (the precision-preserving abstention).

Aggregated per attribute, this shows where an approach earns its
precision and which attributes starve for donors — the analysis behind
the paper's per-dataset discussion in Section 6.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.evaluation.injection import InjectionResult
from repro.evaluation.rules import DatasetValidator


class CellVerdict(enum.Enum):
    """Classification of one injected cell after imputation."""

    EXACT = "exact"
    RULE = "rule"
    WRONG = "wrong"
    UNIMPUTED = "unimputed"


@dataclass(frozen=True)
class CellError:
    """One classified cell with its values."""

    row: int
    attribute: str
    verdict: CellVerdict
    imputed: Any
    expected: Any

    def __str__(self) -> str:
        return (
            f"({self.row}, {self.attribute}) [{self.verdict.value}] "
            f"imputed={self.imputed!r} expected={self.expected!r}"
        )


@dataclass
class AttributeBreakdown:
    """Verdict counts for one attribute."""

    attribute: str
    exact: int = 0
    rule: int = 0
    wrong: int = 0
    unimputed: int = 0

    @property
    def total(self) -> int:
        """Injected cells on this attribute."""
        return self.exact + self.rule + self.wrong + self.unimputed

    @property
    def correct(self) -> int:
        """Exact plus rule-accepted."""
        return self.exact + self.rule

    @property
    def precision(self) -> float:
        """Correct / filled for this attribute."""
        filled = self.correct + self.wrong
        return self.correct / filled if filled else 0.0

    @property
    def recall(self) -> float:
        """Correct / injected for this attribute."""
        return self.correct / self.total if self.total else 0.0


@dataclass
class ErrorAnalysis:
    """The full classification of one imputation run."""

    cells: list[CellError] = field(default_factory=list)

    def count(self, verdict: CellVerdict) -> int:
        """Number of cells with the given verdict."""
        return sum(1 for cell in self.cells if cell.verdict is verdict)

    def cells_with(self, verdict: CellVerdict) -> list[CellError]:
        """The cells carrying one verdict, in injection order."""
        return [cell for cell in self.cells if cell.verdict is verdict]

    def by_attribute(self) -> dict[str, AttributeBreakdown]:
        """Per-attribute verdict counts."""
        breakdowns: dict[str, AttributeBreakdown] = {}
        for cell in self.cells:
            breakdown = breakdowns.setdefault(
                cell.attribute, AttributeBreakdown(cell.attribute)
            )
            if cell.verdict is CellVerdict.EXACT:
                breakdown.exact += 1
            elif cell.verdict is CellVerdict.RULE:
                breakdown.rule += 1
            elif cell.verdict is CellVerdict.WRONG:
                breakdown.wrong += 1
            else:
                breakdown.unimputed += 1
        return breakdowns

    def summary(self) -> str:
        """Fixed-width per-attribute report."""
        lines = [
            f"{'attribute':<14}{'exact':>6}{'rule':>6}{'wrong':>6}"
            f"{'blank':>6}{'prec':>7}{'rec':>7}"
        ]
        for name, breakdown in sorted(self.by_attribute().items()):
            lines.append(
                f"{name:<14}{breakdown.exact:>6}{breakdown.rule:>6}"
                f"{breakdown.wrong:>6}{breakdown.unimputed:>6}"
                f"{breakdown.precision:>7.2f}{breakdown.recall:>7.2f}"
            )
        totals = (
            f"totals: exact={self.count(CellVerdict.EXACT)} "
            f"rule={self.count(CellVerdict.RULE)} "
            f"wrong={self.count(CellVerdict.WRONG)} "
            f"unimputed={self.count(CellVerdict.UNIMPUTED)}"
        )
        lines.append(totals)
        return "\n".join(lines)


def analyze_errors(
    imputed_relation: Relation,
    injection: InjectionResult,
    validator: DatasetValidator | None = None,
) -> ErrorAnalysis:
    """Classify every injected cell of an imputation run."""
    validator = validator or DatasetValidator()
    analysis = ErrorAnalysis()
    for (row, attribute), expected in sorted(
        injection.ground_truth.items()
    ):
        value = imputed_relation.value(row, attribute)
        if is_missing(value):
            verdict = CellVerdict.UNIMPUTED
        elif _exactly_equal(value, expected):
            verdict = CellVerdict.EXACT
        elif validator.is_correct(attribute, value, expected):
            verdict = CellVerdict.RULE
        else:
            verdict = CellVerdict.WRONG
        analysis.cells.append(
            CellError(row, attribute, verdict, value, expected)
        )
    return analysis


def _exactly_equal(value: Any, expected: Any) -> bool:
    if value == expected:
        return True
    try:
        return float(value) == float(expected)
    except (TypeError, ValueError):
        return False
