"""Evaluation framework: injection, metrics, rule validation, runner."""

from repro.evaluation.ascii_chart import render_chart, render_metric_charts
from repro.evaluation.error_analysis import (
    AttributeBreakdown,
    CellError,
    CellVerdict,
    ErrorAnalysis,
    analyze_errors,
)
from repro.evaluation.injection import (
    InjectionResult,
    InjectionSuite,
    build_injection_suite,
    inject_missing,
    missing_count_for_rate,
)
from repro.evaluation.metrics import (
    Scores,
    mean_scores,
    score_imputation,
    score_result,
)
from repro.evaluation.rulefile import (
    load_rule_file,
    save_rule_file,
    validator_from_dict,
    validator_to_dict,
)
from repro.evaluation.rules import (
    DatasetValidator,
    DeltaRule,
    RegexRule,
    Rule,
    ValueSetRule,
    rule_from_spec,
)
from repro.evaluation.runner import (
    ExperimentResult,
    RunRecord,
    compare_approaches,
    run_experiment,
)

__all__ = [
    "AttributeBreakdown",
    "CellError",
    "CellVerdict",
    "DatasetValidator",
    "DeltaRule",
    "ErrorAnalysis",
    "ExperimentResult",
    "InjectionResult",
    "InjectionSuite",
    "RegexRule",
    "Rule",
    "RunRecord",
    "Scores",
    "ValueSetRule",
    "analyze_errors",
    "build_injection_suite",
    "compare_approaches",
    "inject_missing",
    "load_rule_file",
    "mean_scores",
    "missing_count_for_rate",
    "render_chart",
    "render_metric_charts",
    "rule_from_spec",
    "run_experiment",
    "save_rule_file",
    "score_imputation",
    "score_result",
    "validator_from_dict",
    "validator_to_dict",
]
