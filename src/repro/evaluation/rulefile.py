"""Rule files: the JSON persistence of a :class:`DatasetValidator`.

The paper's evaluation methodology stores the admissible variations of
each attribute in a manually curated *rule file*.  Format::

    {
      "dataset": "restaurant",
      "attributes": {
        "Phone": {"rules": [
          {"type": "regex",
           "pattern": "(\\d{3})\\D*(\\d{3})\\D*(\\d{4})"}
        ]},
        "City": {"rules": [
          {"type": "value_set",
           "sets": [["la", "los angeles", "los angles"]]}
        ]},
        "Horsepower": {"rules": [{"type": "delta", "delta": 25}]}
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.evaluation.rules import DatasetValidator, rule_from_spec
from repro.exceptions import RuleFileError


def validator_from_dict(data: Mapping[str, Any]) -> DatasetValidator:
    """Build a validator from a parsed rule-file dictionary."""
    attributes = data.get("attributes")
    if not isinstance(attributes, Mapping):
        raise RuleFileError("rule file needs an 'attributes' mapping")
    rules_by_attribute: dict[str, list] = {}
    for attribute, section in attributes.items():
        if not isinstance(section, Mapping):
            raise RuleFileError(
                f"attribute section {attribute!r} must be a mapping"
            )
        specs = section.get("rules", [])
        if not isinstance(specs, list):
            raise RuleFileError(
                f"'rules' of attribute {attribute!r} must be a list"
            )
        rules_by_attribute[attribute] = [
            rule_from_spec(spec) for spec in specs
        ]
    return DatasetValidator(rules_by_attribute)


def validator_to_dict(
    validator: DatasetValidator, *, dataset: str | None = None
) -> dict:
    """Serialize a validator back to the rule-file structure."""
    data: dict[str, Any] = {}
    if dataset:
        data["dataset"] = dataset
    data["attributes"] = {
        attribute: {
            "rules": [rule.to_spec() for rule in validator.rules_for(attribute)]
        }
        for attribute in validator.attributes()
    }
    return data


def load_rule_file(path: str | Path) -> DatasetValidator:
    """Load a rule file from disk."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise RuleFileError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise RuleFileError(f"{path}: top level must be an object")
    return validator_from_dict(data)


def save_rule_file(
    validator: DatasetValidator,
    path: str | Path,
    *,
    dataset: str | None = None,
) -> None:
    """Write a validator to disk as a rule file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(
            validator_to_dict(validator, dataset=dataset),
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
