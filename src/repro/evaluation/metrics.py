"""Imputation quality metrics (Section 6.1).

With ``missing`` the injected cells, ``imputed`` the cells an approach
filled, and ``true`` the filled cells judged correct by the rule-based
validator:

* ``precision = |true| / |imputed|``  — the "reliability" score: how
  often the approach is right when it chooses to impute,
* ``recall    = |true| / |missing|``  — how much of the damage was
  correctly repaired,
* ``F1        = 2 * p * r / (p + r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.renuver import ImputationResult
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.evaluation.injection import InjectionResult
from repro.evaluation.rules import DatasetValidator
from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class Scores:
    """Precision/recall/F1 plus the raw counts they derive from."""

    missing: int
    imputed: int
    correct: int

    def __post_init__(self) -> None:
        if self.missing < 0 or self.imputed < 0 or self.correct < 0:
            raise EvaluationError("score counts must be non-negative")
        if self.correct > self.imputed:
            raise EvaluationError("correct cannot exceed imputed")

    @property
    def precision(self) -> float:
        """|true| / |imputed| (0 when nothing was imputed)."""
        if self.imputed == 0:
            return 0.0
        return self.correct / self.imputed

    @property
    def recall(self) -> float:
        """|true| / |missing| (0 when nothing was missing)."""
        if self.missing == 0:
            return 0.0
        return self.correct / self.missing

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    @property
    def fill_rate(self) -> float:
        """|imputed| / |missing|."""
        if self.missing == 0:
            return 0.0
        return self.imputed / self.missing

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"({self.correct}/{self.imputed} correct, "
            f"{self.missing} missing)"
        )


def score_imputation(
    imputed_relation: Relation,
    injection: InjectionResult,
    validator: DatasetValidator | None = None,
) -> Scores:
    """Score an imputed relation against the injection's ground truth.

    A cell counts as *imputed* when it is no longer missing in the
    result, and as *correct* when the validator accepts its value for
    the ground truth (strict equality when no validator is given).
    """
    validator = validator or DatasetValidator()
    missing = injection.count
    imputed = 0
    correct = 0
    for (row, attribute), expected in injection.ground_truth.items():
        value = imputed_relation.value(row, attribute)
        if is_missing(value):
            continue
        imputed += 1
        if validator.is_correct(attribute, value, expected):
            correct += 1
    return Scores(missing=missing, imputed=imputed, correct=correct)


def score_result(
    result: ImputationResult,
    injection: InjectionResult,
    validator: DatasetValidator | None = None,
) -> Scores:
    """Convenience wrapper of :func:`score_imputation` for
    :class:`ImputationResult`."""
    return score_imputation(result.relation, injection, validator)


def mean_scores(batches: Iterable[Scores]) -> Scores:
    """Aggregate several variants into one Scores by summing counts.

    Summing counts before dividing equals weighting each variant by its
    injected-cell count — the stable way to average the paper's five
    variants per rate.
    """
    batches = list(batches)
    if not batches:
        raise EvaluationError("mean_scores needs at least one Scores")
    return Scores(
        missing=sum(score.missing for score in batches),
        imputed=sum(score.imputed for score in batches),
        correct=sum(score.correct for score in batches),
    )
