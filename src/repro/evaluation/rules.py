"""Rule-based automatic validation of imputed values (Section 6.1).

The paper introduces a rule framework that accepts an imputation as
correct even when it is not byte-identical to the expected value, as long
as it is *semantically* equivalent.  Three rule kinds are supported,
matching the paper exactly:

* :class:`ValueSetRule` — aliases: ``{"new york", "ny"}`` count as one
  value.
* :class:`RegexRule` — structural variation: both values must match a
  pattern and agree on the concatenated capture groups, e.g. phone
  numbers that differ only in separators.
* :class:`DeltaRule` — numeric tolerance: ``|imputed - expected| <=
  delta``.

A value is accepted if it equals the expectation exactly (after text
normalization) or any rule of its attribute accepts it.
"""

from __future__ import annotations

import abc
import re
from typing import Any, Iterable, Mapping

from repro.dataset.missing import is_missing
from repro.exceptions import RuleFileError


class Rule(abc.ABC):
    """One acceptance rule for an attribute's values."""

    #: Identifier used in rule files.
    kind: str = "abstract"

    @abc.abstractmethod
    def accepts(self, imputed: Any, expected: Any) -> bool:
        """Whether ``imputed`` is an admissible stand-in for
        ``expected``."""

    @abc.abstractmethod
    def to_spec(self) -> dict:
        """JSON-serializable description (inverse of
        :func:`rule_from_spec`)."""


class ValueSetRule(Rule):
    """Accept values belonging to the same alias set as the expectation.

    Comparison is case-insensitive on stripped strings, the way the
    paper's ``"new york" / "ny"`` example demands.
    """

    kind = "value_set"

    def __init__(self, sets: Iterable[Iterable[str]]) -> None:
        self.sets: list[frozenset[str]] = []
        for aliases in sets:
            normalized = frozenset(_normalize(alias) for alias in aliases)
            if len(normalized) < 2:
                raise RuleFileError(
                    "a value set needs at least two distinct aliases"
                )
            self.sets.append(normalized)
        if not self.sets:
            raise RuleFileError("ValueSetRule needs at least one set")

    def accepts(self, imputed: Any, expected: Any) -> bool:
        imputed_norm = _normalize(imputed)
        expected_norm = _normalize(expected)
        return any(
            imputed_norm in aliases and expected_norm in aliases
            for aliases in self.sets
        )

    def to_spec(self) -> dict:
        return {
            "type": self.kind,
            "sets": [sorted(aliases) for aliases in self.sets],
        }


class RegexRule(Rule):
    """Accept values that match a pattern and agree on its captures.

    The pattern must contain at least one capture group; both values must
    fully match, and the concatenation of their captured groups must be
    equal.  This realizes the paper's phone example: with pattern
    ``(\\d{3})\\D*(\\d{3})\\D*(\\d{4})``, ``213/848-6677`` and
    ``213-848-6677`` agree on captures ``213 848 6677``.
    """

    kind = "regex"

    def __init__(self, pattern: str) -> None:
        try:
            self.regex = re.compile(pattern)
        except re.error as exc:
            raise RuleFileError(f"invalid regex {pattern!r}: {exc}") from exc
        if self.regex.groups < 1:
            raise RuleFileError(
                f"regex {pattern!r} needs at least one capture group"
            )
        self.pattern = pattern

    def accepts(self, imputed: Any, expected: Any) -> bool:
        captured_imputed = self._captures(imputed)
        if captured_imputed is None:
            return False
        captured_expected = self._captures(expected)
        if captured_expected is None:
            return False
        return captured_imputed == captured_expected

    def _captures(self, value: Any) -> str | None:
        match = self.regex.fullmatch(str(value).strip())
        if not match:
            return None
        return "".join(group or "" for group in match.groups())

    def to_spec(self) -> dict:
        return {"type": self.kind, "pattern": self.pattern}


class DeltaRule(Rule):
    """Accept numeric values within ``delta`` of the expectation."""

    kind = "delta"

    def __init__(self, delta: float) -> None:
        if delta < 0:
            raise RuleFileError("delta must be >= 0")
        self.delta = float(delta)

    def accepts(self, imputed: Any, expected: Any) -> bool:
        try:
            return abs(float(imputed) - float(expected)) <= self.delta
        except (TypeError, ValueError):
            return False

    def to_spec(self) -> dict:
        return {"type": self.kind, "delta": self.delta}


_RULE_KINDS = {
    ValueSetRule.kind: lambda spec: ValueSetRule(spec["sets"]),
    RegexRule.kind: lambda spec: RegexRule(spec["pattern"]),
    DeltaRule.kind: lambda spec: DeltaRule(spec["delta"]),
}


def rule_from_spec(spec: Mapping[str, Any]) -> Rule:
    """Build a rule from its JSON description."""
    kind = spec.get("type")
    factory = _RULE_KINDS.get(kind)  # type: ignore[arg-type]
    if factory is None:
        raise RuleFileError(
            f"unknown rule type {kind!r}; expected one of "
            f"{sorted(_RULE_KINDS)}"
        )
    try:
        return factory(spec)
    except KeyError as exc:
        raise RuleFileError(
            f"rule spec {spec!r} is missing field {exc}"
        ) from exc


class DatasetValidator:
    """Attribute-wise acceptance of imputations for one dataset.

    ``validator.is_correct("Phone", "213-848-6677", "213/848-6677")``
    first tries normalized equality, then the attribute's rules.
    Attributes without rules fall back to normalized equality only.
    """

    def __init__(
        self, rules_by_attribute: Mapping[str, Iterable[Rule]] | None = None
    ) -> None:
        self._rules: dict[str, list[Rule]] = {
            attribute: list(rules)
            for attribute, rules in (rules_by_attribute or {}).items()
        }

    def rules_for(self, attribute: str) -> list[Rule]:
        """The rules registered for an attribute (possibly empty)."""
        return list(self._rules.get(attribute, []))

    def add_rule(self, attribute: str, rule: Rule) -> None:
        """Register one more rule for an attribute."""
        self._rules.setdefault(attribute, []).append(rule)

    def attributes(self) -> list[str]:
        """Attributes having at least one rule."""
        return sorted(self._rules)

    def is_correct(self, attribute: str, imputed: Any, expected: Any) -> bool:
        """Whether an imputed value counts as correct for the expected
        one."""
        if is_missing(imputed):
            return False
        if is_missing(expected):
            return False
        if _equal(imputed, expected):
            return True
        return any(
            rule.accepts(imputed, expected)
            for rule in self._rules.get(attribute, [])
        )


def _normalize(value: Any) -> str:
    return str(value).strip().lower()


def _equal(imputed: Any, expected: Any) -> bool:
    if imputed == expected:
        return True
    try:
        return float(imputed) == float(expected)
    except (TypeError, ValueError):
        pass
    return _normalize(imputed) == _normalize(expected)
