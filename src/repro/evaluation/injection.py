"""Artificial missing-value injection (Section 6.1).

The paper evaluates by blanking a random percentage of cells and checking
whether imputation restores them: per missing rate it draws *five*
independently injected variants and averages the metrics.  The injection
here mirrors that protocol: the number of blanked cells is
``round(rate * n * m)`` (matching Table 3's counts, e.g. 1% of Restaurant
= 52 cells), drawn uniformly without replacement from the currently
present cells, seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.exceptions import EvaluationError
from repro.utils.rng import spawn_rng


@dataclass
class InjectionResult:
    """An injected variant: the blanked copy plus the ground truth."""

    relation: Relation
    ground_truth: dict[tuple[int, str], Any]
    rate: float
    seed: int
    variant: int = 0

    @property
    def cells(self) -> list[tuple[int, str]]:
        """The blanked cell coordinates, sorted."""
        return sorted(self.ground_truth)

    @property
    def count(self) -> int:
        """Number of injected missing values."""
        return len(self.ground_truth)

    def restore(self) -> Relation:
        """A copy with the ground truth written back (for debugging)."""
        restored = self.relation.copy()
        for (row, attribute), value in self.ground_truth.items():
            restored.set_value(row, attribute, value)
        return restored


def missing_count_for_rate(relation: Relation, rate: float) -> int:
    """Cells to blank for a rate: ``round(rate * n * m)``, at least 1."""
    if not 0 < rate < 1:
        raise EvaluationError(f"rate must be in (0, 1), got {rate}")
    return max(1, round(rate * relation.n_tuples * relation.n_attributes))


def inject_missing(
    relation: Relation,
    *,
    rate: float | None = None,
    count: int | None = None,
    seed: int = 0,
    variant: int = 0,
    attributes: Sequence[str] | None = None,
) -> InjectionResult:
    """Blank ``count`` (or ``rate``-derived) random present cells.

    ``attributes`` restricts injection to some columns.  Raises
    :class:`~repro.exceptions.EvaluationError` when fewer present cells
    exist than requested.
    """
    if (rate is None) == (count is None):
        raise EvaluationError("provide exactly one of rate or count")
    if count is None:
        assert rate is not None
        count = missing_count_for_rate(relation, rate)
        effective_rate = rate
    else:
        if count < 1:
            raise EvaluationError("count must be >= 1")
        effective_rate = count / (relation.n_tuples * relation.n_attributes)

    allowed = (
        set(attributes) if attributes is not None
        else set(relation.attribute_names)
    )
    unknown = allowed - set(relation.attribute_names)
    if unknown:
        raise EvaluationError(f"unknown attributes {sorted(unknown)}")

    present = [
        (row, name)
        for name in relation.attribute_names
        if name in allowed
        for row in range(relation.n_tuples)
        if not is_missing(relation.value(row, name))
    ]
    if count > len(present):
        raise EvaluationError(
            f"cannot blank {count} cells: only {len(present)} present"
        )
    rng = spawn_rng(seed, "inject", relation.name, variant, count)
    chosen = rng.sample(present, count)

    injected = relation.copy(name=f"{relation.name}@{effective_rate:.0%}")
    ground_truth: dict[tuple[int, str], Any] = {}
    for row, name in chosen:
        ground_truth[(row, name)] = relation.value(row, name)
        injected.set_value(row, name, MISSING)
    return InjectionResult(
        relation=injected,
        ground_truth=ground_truth,
        rate=effective_rate,
        seed=seed,
        variant=variant,
    )


@dataclass
class InjectionSuite:
    """The paper's injection protocol: ``variants`` blanked copies per
    missing rate."""

    variants_by_rate: dict[float, list[InjectionResult]] = field(
        default_factory=dict
    )

    def rates(self) -> list[float]:
        """The configured missing rates, sorted."""
        return sorted(self.variants_by_rate)

    def variants(self, rate: float) -> list[InjectionResult]:
        """The injected variants of one rate."""
        try:
            return self.variants_by_rate[rate]
        except KeyError:
            raise EvaluationError(f"no variants for rate {rate}") from None

    def __iter__(self):
        for rate in self.rates():
            for injection in self.variants_by_rate[rate]:
                yield injection


def build_injection_suite(
    relation: Relation,
    rates: Sequence[float],
    *,
    variants: int = 5,
    seed: int = 0,
    attributes: Sequence[str] | None = None,
) -> InjectionSuite:
    """Twenty-five-variant protocol of Section 6.1 (5 rates x 5 copies)."""
    if variants < 1:
        raise EvaluationError("variants must be >= 1")
    suite = InjectionSuite()
    for rate in rates:
        suite.variants_by_rate[float(rate)] = [
            inject_missing(
                relation,
                rate=rate,
                seed=seed,
                variant=variant,
                attributes=attributes,
            )
            for variant in range(variants)
        ]
    return suite
