"""Terminal line charts for the figure-regenerating benchmarks.

The paper's Figures 2 and 3 are metric-vs-missing-rate line plots; the
benchmark harness renders the same series as compact ASCII charts so a
captured pytest run still "shows the figure".  Pure text, no plotting
dependency.

Example output::

    recall vs missing rate
    1.00 |                 A
         |        A
    0.50 |  A        B
         |     B           B
    0.00 +------------------
          1%    3%    5%
      A=renuver B=derand
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import EvaluationError

_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    *,
    title: str = "",
    height: int = 8,
    y_min: float = 0.0,
    y_max: float = 1.0,
) -> str:
    """Render named series as an ASCII line chart.

    Every series must have one value per x label; values are clamped to
    ``[y_min, y_max]``.  Series are drawn with letter markers; where two
    series collide on a cell, the later marker wins and the legend
    disambiguates.
    """
    if not series:
        raise EvaluationError("render_chart needs at least one series")
    if height < 2:
        raise EvaluationError("height must be >= 2")
    if y_max <= y_min:
        raise EvaluationError("y_max must exceed y_min")
    names = list(series)
    if len(names) > len(_MARKERS):
        raise EvaluationError(
            f"too many series ({len(names)}); max {len(_MARKERS)}"
        )
    for name in names:
        if len(series[name]) != len(x_labels):
            raise EvaluationError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_labels)}"
            )

    column_width = max(
        4,
        max((len(label) for label in x_labels), default=4) + 2,
        len(names) + 2,
    )
    width = column_width * len(x_labels)
    grid = [[" "] * width for _ in range(height)]

    for series_index, name in enumerate(names):
        marker = _MARKERS[series_index]
        for point_index, value in enumerate(series[name]):
            clamped = min(max(float(value), y_min), y_max)
            fraction = (clamped - y_min) / (y_max - y_min)
            row = int(round((height - 1) * (1.0 - fraction)))
            # Offset each series inside its x column so markers landing
            # on the same row stay distinguishable.
            base = point_index * column_width
            offset = (column_width - len(names)) // 2 + series_index
            column = base + min(column_width - 1, max(0, offset))
            grid[row][column] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:4.2f}"
        elif row_index == height - 1:
            label = f"{y_min:4.2f}"
        else:
            label = "    "
        lines.append(f"{label} |{''.join(row)}")
    lines.append("     +" + "-" * width)
    axis = "".join(
        label.center(column_width) for label in x_labels
    )
    lines.append("      " + axis)
    legend = " ".join(
        f"{_MARKERS[index]}={name}" for index, name in enumerate(names)
    )
    lines.append(f"      {legend}")
    return "\n".join(lines)


def render_metric_charts(
    table: Mapping[str, Mapping[float, object]],
    rates: Sequence[float],
    metrics: Sequence[str] = ("precision", "recall", "f1"),
    *,
    height: int = 8,
) -> str:
    """Charts for approach -> rate -> Scores tables (the benches' shape).

    ``table[approach][rate]`` must expose the requested metric
    attributes (as :class:`~repro.evaluation.metrics.Scores` does).
    """
    charts: list[str] = []
    labels = [f"{rate:.0%}" for rate in rates]
    for metric in metrics:
        series = {
            approach: [
                getattr(table[approach][rate], metric) for rate in rates
            ]
            for approach in table
        }
        charts.append(
            render_chart(
                series,
                labels,
                title=f"{metric} vs missing rate",
                height=height,
            )
        )
    return "\n\n".join(charts)
