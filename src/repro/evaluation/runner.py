"""The experiment runner: the paper's evaluation loop in one call.

Drives an imputer over an :class:`InjectionSuite` (five variants per
missing rate), scores each run with the rule-based validator and
aggregates per rate — the exact protocol behind Figures 2-3 and Tables
4-5.  Budgets mirror the stress tests: a run exceeding the time or
memory budget is recorded as ``TL``/``ML`` instead of crashing the
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.renuver import ImputationResult
from repro.dataset.relation import Relation
from repro.evaluation.injection import InjectionResult, InjectionSuite
from repro.evaluation.metrics import Scores, mean_scores, score_imputation
from repro.evaluation.rules import DatasetValidator
from repro.exceptions import BudgetExceededError, EvaluationError
from repro.utils.memory import MemoryTracker
from repro.utils.timer import Timer

ImputerFactory = Callable[[], object]


@dataclass
class RunRecord:
    """One (rate, variant) execution."""

    rate: float
    variant: int
    scores: Scores | None
    elapsed_seconds: float
    peak_bytes: int
    status: str = "ok"  # "ok" | "TL" | "ML" | "error"
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the run completed inside its budgets."""
        return self.status == "ok"


@dataclass
class ExperimentResult:
    """All runs of one approach over one injection suite."""

    approach: str
    records: list[RunRecord] = field(default_factory=list)

    def rates(self) -> list[float]:
        """The distinct missing rates, sorted."""
        return sorted({record.rate for record in self.records})

    def records_for(self, rate: float) -> list[RunRecord]:
        """Records of one rate, variant order."""
        return [record for record in self.records if record.rate == rate]

    def mean_scores(self, rate: float) -> Scores:
        """Variant-aggregated scores at one rate (completed runs only)."""
        scored = [
            record.scores
            for record in self.records_for(rate)
            if record.ok and record.scores is not None
        ]
        if not scored:
            raise EvaluationError(
                f"no completed runs at rate {rate} for {self.approach}"
            )
        return mean_scores(scored)

    def mean_elapsed(self, rate: float) -> float:
        """Average wall time per run at one rate (completed runs)."""
        completed = [r for r in self.records_for(rate) if r.ok]
        if not completed:
            return float("nan")
        return sum(r.elapsed_seconds for r in completed) / len(completed)

    def max_peak_bytes(self, rate: float) -> int:
        """Largest observed peak allocation at one rate."""
        completed = [r for r in self.records_for(rate) if r.ok]
        if not completed:
            return 0
        return max(r.peak_bytes for r in completed)

    def status_at(self, rate: float) -> str:
        """"ok" if any run at the rate completed, else the first
        failure status ("TL"/"ML"/"error")."""
        records = self.records_for(rate)
        if any(record.ok for record in records):
            return "ok"
        return records[0].status if records else "error"


def run_experiment(
    approach: str,
    imputer_factory: ImputerFactory,
    suite: InjectionSuite,
    validator: DatasetValidator | None = None,
    *,
    time_budget_seconds: float | None = None,
    memory_budget_bytes: int | None = None,
    track_memory: bool = False,
) -> ExperimentResult:
    """Run a freshly built imputer on every variant of the suite.

    ``imputer_factory`` must return an object with
    ``impute(relation) -> ImputationResult`` (RENUVER and every baseline
    qualify).  A fresh imputer per variant keeps runs independent.
    """
    result = ExperimentResult(approach=approach)
    for injection in suite:
        result.records.append(
            _run_one(
                imputer_factory,
                injection,
                validator,
                time_budget_seconds,
                memory_budget_bytes,
                track_memory,
            )
        )
    return result


def _run_one(
    imputer_factory: ImputerFactory,
    injection: InjectionResult,
    validator: DatasetValidator | None,
    time_budget_seconds: float | None,
    memory_budget_bytes: int | None,
    track_memory: bool,
) -> RunRecord:
    imputer = imputer_factory()
    timer = Timer(time_budget_seconds)
    tracker = MemoryTracker(memory_budget_bytes) if track_memory else None
    timer.start()
    if tracker is not None:
        tracker.__enter__()
    try:
        outcome: ImputationResult = imputer.impute(injection.relation)  # type: ignore[attr-defined]
        elapsed = timer.stop()
        if timer.budget_seconds is not None and elapsed > timer.budget_seconds:
            return RunRecord(
                injection.rate, injection.variant, None, elapsed,
                _peak(tracker), status="TL",
            )
        if tracker is not None and tracker.expired:
            return RunRecord(
                injection.rate, injection.variant, None, elapsed,
                _peak(tracker), status="ML",
            )
        scores = score_imputation(outcome.relation, injection, validator)
        return RunRecord(
            injection.rate, injection.variant, scores, elapsed,
            _peak(tracker),
        )
    except BudgetExceededError as exc:
        elapsed = timer.elapsed
        status = "ML" if exc.peak_bytes is not None else "TL"
        return RunRecord(
            injection.rate, injection.variant, None, elapsed,
            _peak(tracker), status=status, error=str(exc),
        )
    except Exception as exc:  # noqa: BLE001 - a sweep must survive one bad run
        return RunRecord(
            injection.rate, injection.variant, None, timer.elapsed,
            _peak(tracker), status="error", error=f"{type(exc).__name__}: {exc}",
        )
    finally:
        if tracker is not None:
            tracker.__exit__(None, None, None)


def _peak(tracker: MemoryTracker | None) -> int:
    return tracker.peak_bytes if tracker is not None else 0


def compare_approaches(
    factories: dict[str, ImputerFactory],
    suite: InjectionSuite,
    validator: DatasetValidator | None = None,
    **budget_kwargs: object,
) -> dict[str, ExperimentResult]:
    """Run several approaches on the *same* injected variants — the
    paper's "same sets of missing values" guarantee (Section 6.3)."""
    return {
        approach: run_experiment(
            approach, factory, suite, validator, **budget_kwargs  # type: ignore[arg-type]
        )
        for approach, factory in factories.items()
    }
