"""Synthetic Physician dataset (18 attributes, scalable tuple count).

Stands in for the Medicare "Physician Compare" extract of the paper's
scaling experiment (Table 5: 104 to 10359 tuples).  The generator keeps
the original's load-bearing structure:

* a mix of textual and numerical attributes (18 of them, per Table 5),
* crisp dependencies: Zip -> City/State/AreaCode, Specialty ->
  Credential,
* organizational clustering: physicians share organizations, hence
  addresses and phone prefixes — the donors imputation relies on.
"""

from __future__ import annotations

import random

from repro.dataset.attribute import Attribute, AttributeType
from repro.dataset.relation import Relation
from repro.datasets.vocab import (
    FIRST_NAMES,
    LAST_NAMES,
    PHYSICIAN_CITIES,
    PHYSICIAN_SCHOOLS,
    PHYSICIAN_SPECIALTIES,
    STREET_NAMES,
)
from repro.utils.rng import spawn_rng

ATTRIBUTES = (
    Attribute("Npi", AttributeType.INTEGER),
    Attribute("LastName", AttributeType.STRING),
    Attribute("FirstName", AttributeType.STRING),
    Attribute("Gender", AttributeType.STRING),
    Attribute("Credential", AttributeType.STRING),
    Attribute("School", AttributeType.STRING),
    Attribute("GradYear", AttributeType.INTEGER),
    Attribute("Specialty", AttributeType.STRING),
    Attribute("Organization", AttributeType.STRING),
    Attribute("OrgId", AttributeType.INTEGER),
    Attribute("Street", AttributeType.STRING),
    Attribute("City", AttributeType.STRING),
    Attribute("State", AttributeType.STRING),
    Attribute("Zip", AttributeType.STRING),
    Attribute("Phone", AttributeType.STRING),
    Attribute("YearsExperience", AttributeType.INTEGER),
    Attribute("GroupSize", AttributeType.INTEGER),
    Attribute("AcceptsMedicare", AttributeType.BOOLEAN),
)

_ORG_SUFFIXES = ["MEDICAL CENTER", "CLINIC", "HEALTH SYSTEM", "ASSOCIATES",
                 "PHYSICIANS GROUP", "HOSPITAL"]


def generate_physician(
    n_tuples: int = 2072, *, seed: int = 0, scale: int = 1
) -> Relation:
    """Generate the synthetic Physician relation.

    ``scale`` multiplies the tuple count — ``scale=50`` turns the
    paper-sized default into a ~100k-row instance for the blocking
    benchmarks — without shipping data files: the generator stays
    seeded and deterministic, and ``scale=1`` is byte-identical to the
    pre-``scale`` output (the derived seed depends only on the total
    row count).  The organization pool grows with the total, so donor
    group sizes (~25 physicians per practice) stay scale-invariant.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale!r}")
    total = n_tuples * scale
    rng = spawn_rng(seed, "physician", total)
    organizations = _organizations(rng, max(4, total // 25))
    rows = [_row(rng, npi, organizations) for npi in range(total)]
    columns = {
        attribute.name: [row[position] for row in rows]
        for position, attribute in enumerate(ATTRIBUTES)
    }
    return Relation(ATTRIBUTES, columns, name="physician")


def _organizations(
    rng: random.Random, count: int
) -> list[dict]:
    """Shared practices: each fixes location, address and phone prefix."""
    organizations = []
    for org_id in range(count):
        zip_prefix, city, state = rng.choice(PHYSICIAN_CITIES)
        zip_code = f"{zip_prefix}{rng.randint(0, 99):02d}"
        name_city = city.split(" ")[0]
        name = f"{name_city} {rng.choice(_ORG_SUFFIXES)}"
        organizations.append({
            "org_id": 1000 + org_id,
            "name": name,
            "street": f"{rng.randint(100, 9999)} {rng.choice(STREET_NAMES)}",
            "city": city,
            "state": state,
            "zip": zip_code,
            "phone_prefix": f"{rng.randint(200, 989)}-{rng.randint(200, 999)}",
            "group_size": rng.choice([2, 5, 10, 25, 60]),
        })
    return organizations


def _row(rng: random.Random, npi: int, organizations: list[dict]) -> list:
    organization = rng.choice(organizations)
    specialty = rng.choice(list(PHYSICIAN_SPECIALTIES))
    credential = PHYSICIAN_SPECIALTIES[specialty]
    grad_year = rng.randint(1970, 2014)
    years_experience = 2020 - grad_year
    phone = f"{organization['phone_prefix']}-{rng.randint(1000, 9999)}"
    return [
        1_000_000_000 + npi,
        rng.choice(LAST_NAMES),
        rng.choice(FIRST_NAMES),
        rng.choice(["M", "F"]),
        credential,
        rng.choice(PHYSICIAN_SCHOOLS),
        grad_year,
        specialty,
        organization["name"],
        organization["org_id"],
        organization["street"],
        organization["city"],
        organization["state"],
        organization["zip"],
        phone,
        years_experience,
        organization["group_size"],
        rng.random() < 0.85,
    ]
