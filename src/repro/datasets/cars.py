"""Synthetic Cars dataset (406 tuples x 9 attributes).

Stands in for the UCI auto-mpg data the paper uses.  Attributes and
value ranges follow the original (mpg, cylinders, displacement,
horsepower, weight, acceleration, model year, origin, car name); the
physical regressions linking them (bigger engines -> more horsepower ->
more weight -> fewer mpg) create the relaxed dependencies the RFD
discovery step finds, and brand determines origin crisply.
"""

from __future__ import annotations

import random

from repro.dataset.attribute import Attribute, AttributeType
from repro.dataset.relation import Relation
from repro.datasets.vocab import CAR_BRANDS, CAR_MODELS
from repro.utils.rng import spawn_rng

ATTRIBUTES = (
    Attribute("Mpg", AttributeType.FLOAT),
    Attribute("Cylinders", AttributeType.INTEGER),
    Attribute("Displacement", AttributeType.FLOAT),
    Attribute("Horsepower", AttributeType.FLOAT),
    Attribute("Weight", AttributeType.INTEGER),
    Attribute("Acceleration", AttributeType.FLOAT),
    Attribute("ModelYear", AttributeType.INTEGER),
    Attribute("Origin", AttributeType.INTEGER),
    Attribute("Name", AttributeType.STRING),
)

_CYLINDER_BASE_DISPLACEMENT = {3: 80.0, 4: 120.0, 5: 150.0, 6: 200.0, 8: 320.0}


def generate_cars(n_tuples: int = 406, *, seed: int = 0) -> Relation:
    """Generate the synthetic Cars relation."""
    rng = spawn_rng(seed, "cars", n_tuples)
    rows = [_row(rng) for _ in range(n_tuples)]
    columns = {
        attribute.name: [row[position] for row in rows]
        for position, attribute in enumerate(ATTRIBUTES)
    }
    return Relation(ATTRIBUTES, columns, name="cars")


def _row(rng: random.Random) -> list:
    brand = rng.choice(list(CAR_BRANDS))
    origin, scale = CAR_BRANDS[brand]
    cylinders = rng.choices(
        [4, 6, 8] if origin == 1 else [3, 4, 5, 6],
        weights=[4, 3, 3] if origin == 1 else [1, 6, 1, 2],
    )[0]
    displacement = _CYLINDER_BASE_DISPLACEMENT[cylinders] * scale
    displacement *= rng.uniform(0.9, 1.1)
    horsepower = 0.45 * displacement + rng.uniform(15, 45)
    weight = int(1600 + 6.2 * displacement + rng.uniform(-150, 350))
    mpg = max(9.0, 46.0 - 0.0075 * weight + rng.uniform(-3.0, 3.0))
    acceleration = max(
        8.0, 22.0 - 0.055 * horsepower + rng.uniform(-1.5, 1.5)
    )
    model_year = rng.randint(70, 82)
    name = f"{brand} {rng.choice(CAR_MODELS)}"
    return [
        round(mpg, 1),
        cylinders,
        round(displacement, 1),
        round(horsepower, 1),
        weight,
        round(acceleration, 1),
        model_year,
        origin,
        name,
    ]
