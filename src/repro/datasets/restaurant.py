"""Synthetic Restaurant dataset (864 tuples x 6 attributes).

Stands in for the RIDDLE Restaurant dataset used by the paper (a data
integration of Fodor's and Zagat's listings, hence duplicated restaurants
whose names, cities and phone numbers are written in slightly different
ways).  The generator reproduces that structure:

* a pool of base restaurants with Name, Address, City, Phone, Type,
  Class;
* Phone area codes are a function of the City, Class is a function of
  the Type — the dependencies RENUVER's RFDs exploit;
* a fraction of the rows are near-duplicates of a base row with
  perturbed spellings: city aliases ("Los Angeles" -> "LA"), phone
  separator changes ("310/456-0488" -> "310-456-0488"), name
  abbreviations ("Chinois Main" -> "C. Main").
"""

from __future__ import annotations

import random

from repro.dataset.attribute import Attribute, AttributeType
from repro.dataset.relation import Relation
from repro.datasets.vocab import (
    CITY_ALIASES,
    CITY_AREA_CODES,
    CUISINE_CLASSES,
    RESTAURANT_NAME_HEADS,
    RESTAURANT_NAME_TAILS,
    STREET_NAMES,
)
from repro.utils.rng import spawn_rng

ATTRIBUTES = (
    Attribute("Name", AttributeType.STRING),
    Attribute("Address", AttributeType.STRING),
    Attribute("City", AttributeType.STRING),
    Attribute("Phone", AttributeType.STRING),
    Attribute("Type", AttributeType.STRING),
    Attribute("Class", AttributeType.INTEGER),
)

_PHONE_SEPARATORS = ["/", "-", " "]


def generate_restaurant(
    n_tuples: int = 864,
    *,
    seed: int = 0,
    duplicate_fraction: float = 0.375,
) -> Relation:
    """Generate the synthetic Restaurant relation.

    ``duplicate_fraction`` controls how many rows are perturbed copies of
    earlier rows (the data-integration duplicates of the original).
    """
    rng = spawn_rng(seed, "restaurant", n_tuples)
    n_duplicates = int(n_tuples * duplicate_fraction)
    n_base = n_tuples - n_duplicates

    base_rows = [_base_row(rng, index) for index in range(n_base)]
    rows = list(base_rows)
    for _ in range(n_duplicates):
        original = rng.choice(base_rows)
        rows.append(_perturb(rng, original))
    rng.shuffle(rows)
    columns = {
        attribute.name: [row[position] for row in rows]
        for position, attribute in enumerate(ATTRIBUTES)
    }
    return Relation(ATTRIBUTES, columns, name="restaurant")


def _base_row(rng: random.Random, index: int) -> list:
    head = rng.choice(RESTAURANT_NAME_HEADS)
    tail = rng.choice(RESTAURANT_NAME_TAILS)
    name = f"{head}{tail}".strip()
    city = rng.choice(list(CITY_ALIASES))
    street_number = rng.randint(100, 9999)
    address = f"{street_number} {rng.choice(STREET_NAMES)}"
    area = CITY_AREA_CODES[city]
    local = f"{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
    separator = rng.choice(_PHONE_SEPARATORS)
    phone = f"{area}{separator}{local}"
    cuisine = rng.choice(list(CUISINE_CLASSES))
    return [name, address, city, phone, cuisine, CUISINE_CLASSES[cuisine]]


def _perturb(rng: random.Random, original: list) -> list:
    """A near-duplicate: same restaurant, integration-style variations."""
    name, address, city, phone, cuisine, klass = original
    # Name: occasionally abbreviate the first word ("Chinois" -> "C.").
    if rng.random() < 0.4:
        words = name.split(" ")
        if len(words) > 1 and len(words[0]) > 2:
            name = f"{words[0][0]}. {' '.join(words[1:])}"
    # City: swap to an alias spelling.
    if rng.random() < 0.5:
        city = rng.choice(CITY_ALIASES[_canonical_city(city)])
    # Phone: same digits, different separator.
    if rng.random() < 0.6:
        digits = phone.replace("/", "-").split("-", 1)
        separator = rng.choice(_PHONE_SEPARATORS)
        phone = f"{digits[0]}{separator}{digits[1]}"
    # Type: sibling cuisine in the same class ("French" <-> "French
    # (new)"), keeping Class consistent.
    if rng.random() < 0.3:
        siblings = [
            other
            for other, other_class in CUISINE_CLASSES.items()
            if other_class == klass
        ]
        cuisine = rng.choice(siblings)
    return [name, address, city, phone, cuisine, klass]


def _canonical_city(alias: str) -> str:
    for canonical, aliases in CITY_ALIASES.items():
        if alias in aliases:
            return canonical
    return alias
