"""Shared vocabulary for the synthetic dataset generators.

The generators replace the paper's real datasets (no network access in
this environment), so the vocabularies below are crafted to reproduce the
*structural* properties the originals owe their RFDs to: city aliases
with small edit distances, phone formats that differ only in separators,
cuisine types tied to a numeric class, and so on.
"""

from __future__ import annotations

# City -> list of alias spellings (index 0 is the canonical form).  The
# aliases are intentionally close in edit distance, like the RIDDLE
# Restaurant data ("Los Angeles" / "LA" / "Los Angles").
CITY_ALIASES: dict[str, list[str]] = {
    "Los Angeles": ["Los Angeles", "LA", "Los Angles", "L.A."],
    "Hollywood": ["Hollywood", "Hollywood CA", "W. Hollywood"],
    "Malibu": ["Malibu", "Malibu CA"],
    "Santa Monica": ["Santa Monica", "Sta. Monica"],
    "Pasadena": ["Pasadena", "Pasadena CA"],
    "Beverly Hills": ["Beverly Hills", "Beverly Hills CA"],
    "Long Beach": ["Long Beach", "Long Bch"],
    "Venice": ["Venice", "Venice CA"],
    "Burbank": ["Burbank", "Burbank CA"],
    "Glendale": ["Glendale", "Glendale CA"],
}

# City -> telephone area code (a functional dependency the RFDs pick up).
CITY_AREA_CODES: dict[str, str] = {
    "Los Angeles": "213",
    "Hollywood": "213",
    "Malibu": "310",
    "Santa Monica": "310",
    "Pasadena": "626",
    "Beverly Hills": "310",
    "Long Beach": "562",
    "Venice": "310",
    "Burbank": "818",
    "Glendale": "818",
}

# Cuisine type -> numeric class (Type -> Class is a crisp FD; Class ->
# Type is relaxed, since several types share a class).
CUISINE_CLASSES: dict[str, int] = {
    "Californian": 6,
    "French": 5,
    "French (new)": 5,
    "French Bistro": 5,
    "Italian": 4,
    "Pizza": 4,
    "Mexican": 3,
    "Tex-Mex": 3,
    "Chinese": 2,
    "Dim Sum": 2,
    "American": 1,
    "Diner": 1,
    "Steakhouse": 7,
    "Seafood": 8,
}

RESTAURANT_NAME_HEADS: list[str] = [
    "Granita", "Citrus", "Fenix", "Chinois", "Campanile", "Spago",
    "Patina", "Matsuhisa", "Lucques", "Providence", "Valentino",
    "Angelini", "Republique", "Gjelina", "Bestia", "Mozza", "Osteria",
    "Cicada", "Yamashiro", "Dan Tana", "Musso", "Langer", "Philippe",
    "Cole", "Orsa", "Vespertine", "Camphor", "Kismet", "Bavel",
    "Majordomo", "Felix", "Rustic", "Canyon", "Saddle", "Harbor",
]

RESTAURANT_NAME_TAILS: list[str] = [
    "", " Grill", " Cafe", " Kitchen", " Bistro", " House", " Room",
    " Main", " on Melrose", " Beverly", " Tavern", " Bar", " & Co",
]

STREET_NAMES: list[str] = [
    "Sunset Blvd", "Melrose Ave", "Wilshire Blvd", "Pico Blvd",
    "Olympic Blvd", "Ventura Blvd", "Ocean Ave", "Main St",
    "Highland Ave", "Vermont Ave", "Fairfax Ave", "La Brea Ave",
]

# Cars: brand -> origin region (1 = USA, 2 = Europe, 3 = Japan) and the
# displacement scale class of its engines; mirrors auto-mpg structure.
CAR_BRANDS: dict[str, tuple[int, float]] = {
    "chevrolet": (1, 1.15), "ford": (1, 1.2), "plymouth": (1, 1.1),
    "amc": (1, 1.1), "dodge": (1, 1.15), "buick": (1, 1.25),
    "pontiac": (1, 1.2), "volkswagen": (2, 0.7), "peugeot": (2, 0.8),
    "audi": (2, 0.85), "saab": (2, 0.8), "bmw": (2, 0.9),
    "fiat": (2, 0.65), "toyota": (3, 0.75), "datsun": (3, 0.75),
    "honda": (3, 0.65), "mazda": (3, 0.7), "subaru": (3, 0.7),
}

CAR_MODELS: list[str] = [
    "custom", "deluxe", "special", "gl", "dl", "sedan", "wagon",
    "coupe", "hatchback", "brougham", "limited", "sport", "gt", "sl",
]

# Bridges: construction era -> plausible materials and bridge types
# (the Pittsburgh Bridges dataset's core correlations).
BRIDGE_ERAS: list[tuple[int, int, str]] = [
    (1818, 1870, "WOOD"),
    (1851, 1910, "IRON"),
    (1880, 1986, "STEEL"),
]

BRIDGE_TYPES_BY_MATERIAL: dict[str, list[str]] = {
    "WOOD": ["WOOD"],
    "IRON": ["SUSPEN", "SIMPLE-T"],
    "STEEL": ["SIMPLE-T", "ARCH", "CANTILEV", "CONT-T"],
}

BRIDGE_RIVERS: list[str] = ["A", "M", "O"]
BRIDGE_PURPOSES: list[str] = ["HIGHWAY", "RR", "AQUEDUCT", "WALK"]

# Physician: specialty -> credential plus school pools; Zip -> (City,
# State) is the load-bearing FD of the Physician Compare data.
PHYSICIAN_SPECIALTIES: dict[str, str] = {
    "INTERNAL MEDICINE": "MD",
    "FAMILY PRACTICE": "MD",
    "CARDIOLOGY": "MD",
    "DERMATOLOGY": "MD",
    "ORTHOPEDIC SURGERY": "MD",
    "CHIROPRACTIC": "DC",
    "OPTOMETRY": "OD",
    "DENTISTRY": "DDS",
    "PODIATRY": "DPM",
    "PSYCHOLOGY": "PHD",
}

PHYSICIAN_SCHOOLS: list[str] = [
    "UNIVERSITY OF PITTSBURGH", "HARVARD MEDICAL SCHOOL",
    "JOHNS HOPKINS UNIVERSITY", "STANFORD UNIVERSITY",
    "UNIVERSITY OF MICHIGAN", "DUKE UNIVERSITY", "NYU SCHOOL OF MEDICINE",
    "UCLA SCHOOL OF MEDICINE", "EMORY UNIVERSITY", "BAYLOR COLLEGE",
]

PHYSICIAN_CITIES: list[tuple[str, str, str]] = [
    # (zip prefix, city, state)
    ("152", "PITTSBURGH", "PA"),
    ("191", "PHILADELPHIA", "PA"),
    ("100", "NEW YORK", "NY"),
    ("606", "CHICAGO", "IL"),
    ("770", "HOUSTON", "TX"),
    ("900", "LOS ANGELES", "CA"),
    ("941", "SAN FRANCISCO", "CA"),
    ("331", "MIAMI", "FL"),
    ("980", "SEATTLE", "WA"),
    ("302", "ATLANTA", "GA"),
]

FIRST_NAMES: list[str] = [
    "JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER",
    "MICHAEL", "LINDA", "WILLIAM", "ELIZABETH", "DAVID", "BARBARA",
    "RICHARD", "SUSAN", "JOSEPH", "JESSICA", "THOMAS", "SARAH",
]

LAST_NAMES: list[str] = [
    "SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA",
    "MILLER", "DAVIS", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ",
    "GONZALEZ", "WILSON", "ANDERSON", "THOMAS", "TAYLOR", "MOORE",
]
