"""Built-in rule files for the bundled datasets (Section 6.1).

The paper curates one rule file per dataset "after a painstaking
evaluation of each attribute value distribution"; these are the
equivalents for the synthetic twins.  Each validator encodes which
syntactic variations still count as a correct imputation:

* phone numbers match on digits regardless of separators (regex rule),
* city aliases are interchangeable (value-set rule),
* numeric attributes allow the paper-style deltas (e.g. Horsepower
  +-25 on Cars — the example Section 6.1 gives verbatim).
"""

from __future__ import annotations

from repro.datasets.vocab import CITY_ALIASES, CUISINE_CLASSES
from repro.evaluation.rules import (
    DatasetValidator,
    DeltaRule,
    RegexRule,
    ValueSetRule,
)

PHONE_REGEX = r"(\d{3})\D*(\d{3})\D*(\d{4})"


def restaurant_validator() -> DatasetValidator:
    """Rules for the Restaurant dataset."""
    type_sets = _sets_by_class()
    validator = DatasetValidator()
    validator.add_rule("Phone", RegexRule(PHONE_REGEX))
    validator.add_rule(
        "City", ValueSetRule(list(CITY_ALIASES.values()))
    )
    if type_sets:
        validator.add_rule("Type", ValueSetRule(type_sets))
    return validator


def cars_validator() -> DatasetValidator:
    """Rules for the Cars dataset (Horsepower delta 25 per the paper)."""
    validator = DatasetValidator()
    validator.add_rule("Horsepower", DeltaRule(25))
    validator.add_rule("Mpg", DeltaRule(3.0))
    validator.add_rule("Displacement", DeltaRule(25.0))
    validator.add_rule("Weight", DeltaRule(250))
    validator.add_rule("Acceleration", DeltaRule(1.5))
    return validator


def glass_validator() -> DatasetValidator:
    """Rules for the Glass dataset: tight deltas on the oxide
    concentrations (close decimal values)."""
    validator = DatasetValidator()
    validator.add_rule("RI", DeltaRule(0.002))
    for oxide, delta in [
        ("Na", 0.6), ("Mg", 0.6), ("Al", 0.4), ("Si", 0.8),
        ("K", 0.3), ("Ca", 0.8), ("Ba", 0.3), ("Fe", 0.1),
    ]:
        validator.add_rule(oxide, DeltaRule(delta))
    return validator


def bridges_validator() -> DatasetValidator:
    """Rules for the Bridges dataset."""
    validator = DatasetValidator()
    validator.add_rule("Erected", DeltaRule(15))
    validator.add_rule("Length", DeltaRule(400))
    validator.add_rule("Location", DeltaRule(3))
    return validator


def physician_validator() -> DatasetValidator:
    """Rules for the Physician dataset."""
    validator = DatasetValidator()
    validator.add_rule("Phone", RegexRule(PHONE_REGEX))
    validator.add_rule("GradYear", DeltaRule(5))
    validator.add_rule("YearsExperience", DeltaRule(5))
    return validator


def _sets_by_class() -> list[list[str]]:
    """Cuisine types sharing a class are semantic aliases (e.g. 'French'
    / 'French (new)')."""
    by_class: dict[int, list[str]] = {}
    for cuisine, klass in CUISINE_CLASSES.items():
        by_class.setdefault(klass, []).append(cuisine)
    return [aliases for aliases in by_class.values() if len(aliases) > 1]
