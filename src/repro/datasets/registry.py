"""Dataset registry: one-call access to the bundled datasets.

``load_dataset("restaurant")`` returns the synthetic twin at the paper's
size; ``dataset_validator("restaurant")`` returns its built-in rule file
(see Table 3 and Section 6.1 for the originals these stand in for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataset.relation import Relation
from repro.datasets.bridges import generate_bridges
from repro.datasets.cars import generate_cars
from repro.datasets.glass import generate_glass
from repro.datasets.physician import generate_physician
from repro.datasets.restaurant import generate_restaurant
from repro.datasets.rules_builtin import (
    bridges_validator,
    cars_validator,
    glass_validator,
    physician_validator,
    restaurant_validator,
)
from repro.evaluation.rules import DatasetValidator
from repro.exceptions import DataError


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: generator, rule file and the paper's dimensions."""

    name: str
    generator: Callable[..., Relation]
    validator_factory: Callable[[], DatasetValidator]
    paper_tuples: int
    paper_attributes: int


_REGISTRY: dict[str, DatasetInfo] = {
    "restaurant": DatasetInfo(
        "restaurant", generate_restaurant, restaurant_validator, 864, 6
    ),
    "cars": DatasetInfo("cars", generate_cars, cars_validator, 406, 9),
    "glass": DatasetInfo("glass", generate_glass, glass_validator, 214, 11),
    "bridges": DatasetInfo(
        "bridges", generate_bridges, bridges_validator, 108, 13
    ),
    "physician": DatasetInfo(
        "physician", generate_physician, physician_validator, 2072, 18
    ),
}


def dataset_names() -> list[str]:
    """Names of the bundled datasets."""
    return sorted(_REGISTRY)


def dataset_info(name: str) -> DatasetInfo:
    """Registry entry for a dataset name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise DataError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def load_dataset(
    name: str, *, n_tuples: int | None = None, seed: int = 0
) -> Relation:
    """Generate a bundled dataset (paper-sized unless overridden)."""
    info = dataset_info(name)
    if n_tuples is None:
        return info.generator(seed=seed)
    return info.generator(n_tuples, seed=seed)


def dataset_validator(name: str) -> DatasetValidator:
    """The built-in rule-file validator of a bundled dataset."""
    return dataset_info(name).validator_factory()
