"""Bundled synthetic datasets standing in for the paper's real ones."""

from repro.datasets.bridges import generate_bridges
from repro.datasets.cars import generate_cars
from repro.datasets.glass import generate_glass
from repro.datasets.physician import generate_physician
from repro.datasets.registry import (
    DatasetInfo,
    dataset_info,
    dataset_names,
    dataset_validator,
    load_dataset,
)
from repro.datasets.restaurant import generate_restaurant
from repro.datasets.rules_builtin import (
    bridges_validator,
    cars_validator,
    glass_validator,
    physician_validator,
    restaurant_validator,
)

__all__ = [
    "DatasetInfo",
    "bridges_validator",
    "cars_validator",
    "dataset_info",
    "dataset_names",
    "dataset_validator",
    "generate_bridges",
    "generate_cars",
    "generate_glass",
    "generate_physician",
    "generate_restaurant",
    "glass_validator",
    "load_dataset",
    "physician_validator",
    "restaurant_validator",
]
