"""Synthetic Bridges dataset (108 tuples x 13 attributes).

Stands in for the Pittsburgh Bridges data: categorical-heavy design
attributes of bridges over three rivers, with the era of construction
driving material, material driving the plausible bridge types, and span
driving length/lanes — the correlations that make the original a classic
dependency-discovery benchmark.
"""

from __future__ import annotations

import random

from repro.dataset.attribute import Attribute, AttributeType
from repro.dataset.relation import Relation
from repro.datasets.vocab import (
    BRIDGE_ERAS,
    BRIDGE_PURPOSES,
    BRIDGE_RIVERS,
    BRIDGE_TYPES_BY_MATERIAL,
)
from repro.utils.rng import spawn_rng

ATTRIBUTES = (
    Attribute("Identif", AttributeType.STRING),
    Attribute("River", AttributeType.STRING),
    Attribute("Location", AttributeType.INTEGER),
    Attribute("Erected", AttributeType.INTEGER),
    Attribute("Purpose", AttributeType.STRING),
    Attribute("Length", AttributeType.INTEGER),
    Attribute("Lanes", AttributeType.INTEGER),
    Attribute("ClearG", AttributeType.STRING),
    Attribute("TOrD", AttributeType.STRING),
    Attribute("Material", AttributeType.STRING),
    Attribute("Span", AttributeType.STRING),
    Attribute("RelL", AttributeType.STRING),
    Attribute("Type", AttributeType.STRING),
)

_SPAN_LENGTH = {"SHORT": (800, 1400), "MEDIUM": (1200, 2400),
                "LONG": (2000, 4600)}


def generate_bridges(n_tuples: int = 108, *, seed: int = 0) -> Relation:
    """Generate the synthetic Bridges relation."""
    rng = spawn_rng(seed, "bridges", n_tuples)
    rows = [_row(rng, index) for index in range(n_tuples)]
    columns = {
        attribute.name: [row[position] for row in rows]
        for position, attribute in enumerate(ATTRIBUTES)
    }
    return Relation(ATTRIBUTES, columns, name="bridges")


def _row(rng: random.Random, index: int) -> list:
    era_start, era_end, material = rng.choice(BRIDGE_ERAS)
    erected = rng.randint(era_start, era_end)
    river = rng.choice(BRIDGE_RIVERS)
    location = rng.randint(1, 52)
    purpose = rng.choices(BRIDGE_PURPOSES, weights=[6, 4, 1, 1])[0]
    span = rng.choices(
        ["SHORT", "MEDIUM", "LONG"],
        weights=[3, 5, 2] if material != "WOOD" else [6, 3, 1],
    )[0]
    low, high = _SPAN_LENGTH[span]
    length = rng.randint(low, high)
    lanes = {"SHORT": 2, "MEDIUM": rng.choice([2, 4]),
             "LONG": rng.choice([4, 6])}[span]
    if purpose == "RR":
        lanes = 2
    clear_g = "G" if erected >= 1870 and span != "LONG" else "N"
    t_or_d = "THROUGH" if purpose in ("HIGHWAY", "RR") else "DECK"
    bridge_type = rng.choice(BRIDGE_TYPES_BY_MATERIAL[material])
    rel_l = {"SHORT": "S", "MEDIUM": "M", "LONG": "F"}[span]
    identifier = f"{river}{index + 1}"
    return [
        identifier, river, location, erected, purpose, length, lanes,
        clear_g, t_or_d, material, span, rel_l, bridge_type,
    ]
