"""Synthetic Glass dataset (214 tuples x 11 attributes).

Stands in for the UCI Glass Identification data: oxide concentrations
(weight percent) plus refractive index, with the glass ``Type`` driving
per-type Gaussian mixtures.  The means below track the published
per-class statistics of the original, so the same qualitative difficulty
the paper observes carries over — values are close decimal numbers whose
small absolute distances integer-ish RFD thresholds capture poorly
(Section 6.2's explanation of the flat Glass curves).
"""

from __future__ import annotations

import random

from repro.dataset.attribute import Attribute, AttributeType
from repro.dataset.relation import Relation
from repro.utils.rng import spawn_rng

ATTRIBUTES = (
    Attribute("Id", AttributeType.INTEGER),
    Attribute("RI", AttributeType.FLOAT),
    Attribute("Na", AttributeType.FLOAT),
    Attribute("Mg", AttributeType.FLOAT),
    Attribute("Al", AttributeType.FLOAT),
    Attribute("Si", AttributeType.FLOAT),
    Attribute("K", AttributeType.FLOAT),
    Attribute("Ca", AttributeType.FLOAT),
    Attribute("Ba", AttributeType.FLOAT),
    Attribute("Fe", AttributeType.FLOAT),
    Attribute("Type", AttributeType.INTEGER),
)

# Per-type (mean, std) of each oxide, loosely matching the UCI data:
# type: RI, Na, Mg, Al, Si, K, Ca, Ba, Fe
_TYPE_PROFILES: dict[int, list[tuple[float, float]]] = {
    1: [(1.5187, 0.0015), (13.24, 0.45), (3.55, 0.25), (1.16, 0.25),
        (72.6, 0.55), (0.45, 0.20), (8.80, 0.55), (0.01, 0.02),
        (0.06, 0.08)],
    2: [(1.5186, 0.0020), (13.11, 0.55), (3.00, 0.90), (1.41, 0.30),
        (72.6, 0.70), (0.52, 0.20), (9.07, 1.20), (0.05, 0.10),
        (0.08, 0.10)],
    3: [(1.5179, 0.0015), (13.44, 0.50), (3.54, 0.20), (1.20, 0.30),
        (72.4, 0.55), (0.41, 0.20), (8.78, 0.50), (0.01, 0.02),
        (0.06, 0.08)],
    5: [(1.5189, 0.0025), (12.83, 0.75), (0.77, 1.00), (2.03, 0.70),
        (72.4, 1.30), (1.47, 1.00), (10.12, 2.00), (0.19, 0.60),
        (0.06, 0.10)],
    6: [(1.5175, 0.0020), (14.65, 1.00), (1.31, 1.30), (1.37, 0.60),
        (73.2, 1.00), (0.00, 0.00), (9.36, 1.50), (0.00, 0.00),
        (0.00, 0.00)],
    7: [(1.5171, 0.0015), (14.44, 0.70), (0.54, 1.00), (2.12, 0.50),
        (72.9, 0.90), (0.33, 0.60), (8.49, 1.00), (1.04, 0.70),
        (0.01, 0.03)],
}

# Tuple counts per type in the original 214-row dataset.
_TYPE_COUNTS = {1: 70, 2: 76, 3: 17, 5: 13, 6: 9, 7: 29}


def generate_glass(n_tuples: int = 214, *, seed: int = 0) -> Relation:
    """Generate the synthetic Glass relation."""
    rng = spawn_rng(seed, "glass", n_tuples)
    total = sum(_TYPE_COUNTS.values())
    rows: list[list] = []
    identifier = 1
    for glass_type, count in _TYPE_COUNTS.items():
        quota = max(1, round(count / total * n_tuples))
        for _ in range(quota):
            rows.append(_row(rng, identifier, glass_type))
            identifier += 1
    while len(rows) < n_tuples:
        rows.append(_row(rng, identifier, 2))
        identifier += 1
    rows = rows[:n_tuples]
    columns = {
        attribute.name: [row[position] for row in rows]
        for position, attribute in enumerate(ATTRIBUTES)
    }
    return Relation(ATTRIBUTES, columns, name="glass")


def _row(rng: random.Random, identifier: int, glass_type: int) -> list:
    profile = _TYPE_PROFILES[glass_type]
    values: list = [identifier]
    for position, (mean, std) in enumerate(profile):
        value = max(0.0, rng.gauss(mean, std)) if std else mean
        decimals = 5 if position == 0 else 2  # RI has 5 decimals
        values.append(round(value, decimals))
    values.append(glass_type)
    return values
