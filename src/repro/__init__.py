"""repro — a reproduction of RENUVER (Breve et al., EDBT 2022).

RENUVER imputes missing values in relational data by exploiting relaxed
functional dependencies (RFDs): dependencies whose attribute comparisons
are distance-based rather than strict equalities.  RFDs whose RHS is the
missing attribute generate and rank candidate tuples; RFDs whose LHS
contains the imputed attribute verify that each imputation keeps the
instance semantically consistent.

Quickstart::

    from repro import (
        load_dataset, discover_rfds, DiscoveryConfig, Renuver,
        inject_missing, score_imputation, dataset_validator,
    )

    clean = load_dataset("restaurant")
    rfds = discover_rfds(clean, DiscoveryConfig(threshold_limit=6)).all_rfds
    dirty = inject_missing(clean, rate=0.02, seed=7)
    result = Renuver(rfds).impute(dirty.relation)
    print(score_imputation(result.relation, dirty,
                           dataset_validator("restaurant")))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.baselines import (
    BaseImputer,
    DenialConstraint,
    DerandImputer,
    GreyKNNImputer,
    HolocleanLiteImputer,
    MeanModeImputer,
    discover_dcs,
    fd_as_dc,
)
from repro.core import (
    BudgetEvent,
    Candidate,
    CellOutcome,
    Cluster,
    Degradation,
    ImputationReport,
    ImputationResult,
    OutcomeStatus,
    Renuver,
    RenuverConfig,
)
from repro.dataset import (
    MISSING,
    Attribute,
    AttributeType,
    Relation,
    is_missing,
    read_csv,
    read_csv_text,
    write_csv,
)
from repro.datasets import (
    dataset_names,
    dataset_validator,
    load_dataset,
)
from repro.discovery import DiscoveryConfig, DiscoveryResult, discover_rfds
from repro.distance import (
    DistanceFunction,
    DistancePattern,
    PatternCalculator,
    levenshtein,
)
from repro.evaluation import (
    DatasetValidator,
    DeltaRule,
    InjectionResult,
    RegexRule,
    Scores,
    ValueSetRule,
    build_injection_suite,
    compare_approaches,
    inject_missing,
    load_rule_file,
    run_experiment,
    save_rule_file,
    score_imputation,
)
from repro.exceptions import (
    BudgetExceededError,
    ReproError,
    WorkerPoolError,
)
from repro.extensions import (
    ImputationSession,
    MultiSourceRenuver,
    config_with_suggested_limits,
    suggest_threshold_limits,
)
from repro.rfd import (
    RFD,
    Constraint,
    holds,
    holds_all,
    load_rfds,
    make_rfd,
    parse_rfd,
    save_rfds,
)
from repro.robustness import (
    ChaosConfig,
    ChaosInjector,
    ChaosKill,
    JournalWriter,
    load_journal,
    replay_journal,
)
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    configure_logging,
    get_logger,
)

__version__ = "1.0.0"

__all__ = [
    "MISSING",
    "Attribute",
    "AttributeType",
    "BaseImputer",
    "BudgetEvent",
    "BudgetExceededError",
    "Candidate",
    "CellOutcome",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosKill",
    "Cluster",
    "Constraint",
    "DatasetValidator",
    "Degradation",
    "DeltaRule",
    "DenialConstraint",
    "DerandImputer",
    "DiscoveryConfig",
    "DiscoveryResult",
    "DistanceFunction",
    "DistancePattern",
    "GreyKNNImputer",
    "HolocleanLiteImputer",
    "ImputationReport",
    "ImputationResult",
    "ImputationSession",
    "InjectionResult",
    "JournalWriter",
    "MeanModeImputer",
    "MetricsRegistry",
    "MultiSourceRenuver",
    "OutcomeStatus",
    "PatternCalculator",
    "RFD",
    "RegexRule",
    "Relation",
    "Renuver",
    "RenuverConfig",
    "ReproError",
    "Scores",
    "Telemetry",
    "Tracer",
    "ValueSetRule",
    "WorkerPoolError",
    "build_injection_suite",
    "compare_approaches",
    "config_with_suggested_limits",
    "configure_logging",
    "dataset_names",
    "dataset_validator",
    "discover_dcs",
    "discover_rfds",
    "fd_as_dc",
    "get_logger",
    "holds",
    "holds_all",
    "inject_missing",
    "is_missing",
    "levenshtein",
    "load_dataset",
    "load_journal",
    "load_rfds",
    "load_rule_file",
    "make_rfd",
    "parse_rfd",
    "read_csv",
    "read_csv_text",
    "replay_journal",
    "run_experiment",
    "save_rfds",
    "save_rule_file",
    "score_imputation",
    "suggest_threshold_limits",
    "write_csv",
    "__version__",
]
