"""The missing-value sentinel.

The paper writes a missing value as ``t[A] = _``.  We model it with a
dedicated singleton rather than ``None`` or ``NaN`` so that

* missing-ness survives round-trips through CSV files and copies,
* it is type-agnostic (usable in string, numeric and boolean columns),
* accidental arithmetic on a missing value fails loudly instead of
  propagating ``NaN``.
"""

from __future__ import annotations

import math
from typing import Any


class MissingType:
    """Singleton type of the :data:`MISSING` sentinel."""

    _instance: "MissingType | None" = None

    def __new__(cls) -> "MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"

    def __str__(self) -> str:
        return "_"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MissingType)

    def __hash__(self) -> int:
        return hash(MissingType)

    def __reduce__(self) -> tuple[Any, ...]:
        return (MissingType, ())


MISSING = MissingType()
"""The unique missing-value marker, rendered as ``_`` like in the paper."""


def is_missing(value: Any) -> bool:
    """Return ``True`` if ``value`` denotes a missing cell.

    Besides :data:`MISSING` itself, ``None`` and float ``NaN`` are treated
    as missing so relations built from third-party data behave sensibly.
    """
    if value is MISSING or value is None:
        return True
    if isinstance(value, MissingType):
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def normalize_missing(value: Any) -> Any:
    """Map every missing representation to the canonical :data:`MISSING`."""
    return MISSING if is_missing(value) else value
