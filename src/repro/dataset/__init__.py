"""Relational substrate: typed relations with explicit missing values."""

from repro.dataset.attribute import (
    Attribute,
    AttributeType,
    coerce_value,
    infer_type,
)
from repro.dataset.csv_io import (
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.dataset.missing import (
    MISSING,
    MissingType,
    is_missing,
    normalize_missing,
)
from repro.dataset.relation import Relation, RowView

__all__ = [
    "Attribute",
    "AttributeType",
    "MISSING",
    "MissingType",
    "Relation",
    "RowView",
    "coerce_value",
    "infer_type",
    "is_missing",
    "normalize_missing",
    "read_csv",
    "read_csv_text",
    "to_csv_text",
    "write_csv",
]
