"""CSV import/export for relations.

Empty cells and a configurable set of null literals (``_``, ``NA`` …) map
to :data:`~repro.dataset.missing.MISSING`; attribute types are inferred
from the remaining values unless declared explicitly.

Malformed input — ragged rows, duplicate or blank headers, undecodable
bytes, embedded NULs — raises :class:`~repro.exceptions.CSVFormatError`
with 1-based row/column locations rather than leaking ``IndexError`` or
``UnicodeDecodeError`` from the parsing internals.  Writes go through a
write-temp-then-rename so a crash mid-write never leaves a truncated
file at the target path.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence

from repro.dataset.attribute import Attribute, AttributeType, infer_type
from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.exceptions import CSVFormatError
from repro.utils.atomic import atomic_write_text

DEFAULT_NULL_LITERALS = frozenset({"", "_", "?", "na", "n/a", "null", "none"})


def read_csv(
    path: str | Path,
    *,
    name: str | None = None,
    types: Mapping[str, AttributeType] | None = None,
    null_literals: Sequence[str] | frozenset[str] = DEFAULT_NULL_LITERALS,
    delimiter: str = ",",
) -> Relation:
    """Read a CSV file (with header row) into a :class:`Relation`."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        return _parse(
            handle,
            name=name or path.stem,
            types=types,
            null_literals=null_literals,
            delimiter=delimiter,
        )


def read_csv_text(
    text: str,
    *,
    name: str = "relation",
    types: Mapping[str, AttributeType] | None = None,
    null_literals: Sequence[str] | frozenset[str] = DEFAULT_NULL_LITERALS,
    delimiter: str = ",",
) -> Relation:
    """Parse CSV content from a string; convenient for tests and examples."""
    return _parse(
        io.StringIO(text),
        name=name,
        types=types,
        null_literals=null_literals,
        delimiter=delimiter,
    )


def write_csv(
    relation: Relation,
    path: str | Path,
    *,
    null_literal: str = "",
    delimiter: str = ",",
) -> None:
    """Write a relation to a CSV file, rendering missing cells as
    ``null_literal``.

    The write is atomic (temp file + rename): a run killed mid-write
    leaves either the previous file or the complete new one.
    """
    atomic_write_text(
        Path(path),
        to_csv_text(relation, null_literal=null_literal,
                    delimiter=delimiter),
    )


def to_csv_text(
    relation: Relation,
    *,
    null_literal: str = "",
    delimiter: str = ",",
) -> str:
    """Render a relation as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(relation.attribute_names)
    for row in range(relation.n_tuples):
        writer.writerow([
            null_literal if is_missing(value) else value
            for value in relation.row_values(row)
        ])
    return buffer.getvalue()


def _parse(
    handle: io.TextIOBase,
    *,
    name: str,
    types: Mapping[str, AttributeType] | None,
    null_literals: Sequence[str] | frozenset[str],
    delimiter: str,
) -> Relation:
    nulls = {literal.lower() for literal in null_literals}
    reader = csv.reader(handle, delimiter=delimiter)
    line_number = 1
    try:
        try:
            header = next(reader)
        except StopIteration:
            raise CSVFormatError(
                "CSV input is empty (no header row)"
            ) from None
        header = [column.strip() for column in header]
        for position, column in enumerate(header, start=1):
            if not column:
                raise CSVFormatError(
                    f"line 1, column {position}: blank column name "
                    f"in header {header}"
                )
        _check_duplicate_headers(header)

        columns: dict[str, list[object]] = {column: [] for column in header}
        for line_number, record in enumerate(reader, start=2):
            if not record:
                continue  # skip completely blank lines
            if len(record) != len(header):
                raise CSVFormatError(
                    f"line {line_number}: expected {len(header)} fields, "
                    f"got {len(record)}"
                )
            for column, raw in zip(header, record):
                cell = raw.strip()
                if cell.lower() in nulls:
                    columns[column].append(MISSING)
                else:
                    columns[column].append(cell)
    except UnicodeDecodeError as exc:
        raise CSVFormatError(
            f"undecodable input after line {max(line_number, reader.line_num)}"
            f": {exc.reason} at byte offset {exc.start} "
            f"(file is not valid UTF-8)"
        ) from exc
    except csv.Error as exc:
        raise CSVFormatError(
            f"line {max(1, reader.line_num)}: {exc}"
        ) from exc

    declared = dict(types or {})
    attributes = [
        Attribute(column, declared.get(column) or infer_type(columns[column]))
        for column in header
    ]
    return Relation(attributes, columns, name=name)


def _check_duplicate_headers(header: list[str]) -> None:
    """Raise with the duplicate name and its 1-based column positions."""
    if len(set(header)) == len(header):
        return
    positions: dict[str, list[int]] = {}
    for position, column in enumerate(header, start=1):
        positions.setdefault(column, []).append(position)
    duplicates = {
        column: cols for column, cols in positions.items() if len(cols) > 1
    }
    rendered = ", ".join(
        f"{column!r} at columns {cols}"
        for column, cols in duplicates.items()
    )
    raise CSVFormatError(f"duplicate column names in header: {rendered}")
