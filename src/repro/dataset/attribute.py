"""Attributes, attribute types and type inference.

RENUVER chooses a distance function per attribute domain (edit distance for
strings, absolute difference for numbers, equality for booleans), so every
:class:`Attribute` carries an :class:`AttributeType`.  Types can be declared
explicitly or inferred from data with :func:`infer_type`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable

from repro.dataset.missing import MISSING, is_missing
from repro.exceptions import DataError, SchemaError

_TRUE_LITERALS = {"true", "t", "yes", "y"}
_FALSE_LITERALS = {"false", "f", "no", "n"}


class AttributeType(enum.Enum):
    """Domain of an attribute; drives the default distance function."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        """Whether values compare by absolute difference."""
        return self in (AttributeType.INTEGER, AttributeType.FLOAT)


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation schema."""

    name: str
    type: AttributeType = AttributeType.STRING

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def __str__(self) -> str:
        return self.name


def infer_type(values: Iterable[Any]) -> AttributeType:
    """Infer the narrowest :class:`AttributeType` covering ``values``.

    Missing values are ignored.  Precedence is boolean > integer > float >
    string: a column of ``{"0", "1"}`` stays integer (not boolean) because
    numeric literals are only treated as booleans when the column contains
    ``true``/``false`` style literals or Python bools.
    """
    saw_value = False
    could_be_bool = True
    could_be_int = True
    could_be_float = True
    saw_bool_literal = False
    for value in values:
        if is_missing(value):
            continue
        saw_value = True
        if isinstance(value, bool):
            saw_bool_literal = True
            could_be_int = False
            could_be_float = False
            continue
        could_be_bool = could_be_bool and _is_bool_literal(value)
        saw_bool_literal = saw_bool_literal or _is_bool_literal(value)
        if isinstance(value, int):
            continue
        if isinstance(value, float):
            could_be_int = False
            continue
        text = str(value).strip()
        if not _is_int_literal(text):
            could_be_int = False
        if not _is_float_literal(text):
            could_be_float = False
    if not saw_value:
        return AttributeType.STRING
    if could_be_bool and saw_bool_literal:
        return AttributeType.BOOLEAN
    if could_be_int:
        return AttributeType.INTEGER
    if could_be_float:
        return AttributeType.FLOAT
    return AttributeType.STRING


def coerce_value(value: Any, attr_type: AttributeType) -> Any:
    """Coerce ``value`` into the Python representation of ``attr_type``.

    :data:`MISSING` passes through untouched.  Raises :class:`DataError`
    when the value cannot represent the target type.
    """
    if is_missing(value):
        return MISSING
    try:
        if attr_type is AttributeType.BOOLEAN:
            return _coerce_bool(value)
        if attr_type is AttributeType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float):
                if not value.is_integer():
                    raise DataError(
                        f"cannot coerce non-integral {value!r} to integer"
                    )
                return int(value)
            text = str(value).strip()
            try:
                return int(text)
            except ValueError:
                # "5.0" style literals: accept when integral.
                as_float = float(text)
                if not as_float.is_integer():
                    raise
                return int(as_float)
        if attr_type is AttributeType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            return float(str(value).strip())
        return str(value)
    except (ValueError, TypeError) as exc:
        raise DataError(
            f"cannot coerce {value!r} to {attr_type.value}"
        ) from exc


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in _TRUE_LITERALS:
        return True
    if text in _FALSE_LITERALS:
        return False
    raise DataError(f"cannot coerce {value!r} to boolean")


def _is_bool_literal(value: Any) -> bool:
    if isinstance(value, bool):
        return True
    if isinstance(value, (int, float)):
        return False
    text = str(value).strip().lower()
    return text in _TRUE_LITERALS or text in _FALSE_LITERALS


def _is_int_literal(text: str) -> bool:
    if not text:
        return False
    try:
        int(text)
    except ValueError:
        return False
    return True


def _is_float_literal(text: str) -> bool:
    if not text:
        return False
    try:
        value = float(text)
    except ValueError:
        return False
    # Reject inf/nan spelled out in data files; they are almost always noise.
    return value == value and value not in (float("inf"), float("-inf"))
