"""The relation instance: a small, column-oriented in-memory table.

The datasets the paper evaluates on are laptop-scale (hundreds to a few
thousand tuples), and RENUVER's inner loops read cells attribute-by-
attribute, so a plain column store (one Python list per attribute) is both
the simplest and the fastest layout here.

A :class:`Relation` is mutable only through :meth:`set_value` — exactly the
operation the imputation algorithms need — and every mutation bumps a
version counter so caches (distance patterns, key-RFD status) can detect
staleness.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.dataset.attribute import (
    Attribute,
    AttributeType,
    coerce_value,
    infer_type,
)
from repro.dataset.missing import MISSING, is_missing, normalize_missing
from repro.exceptions import DataError, SchemaError


class RowView(Mapping[str, Any]):
    """Read-only mapping view of one tuple of a relation.

    Supports lookup by attribute name (``row["Phone"]``) and exposes the
    source row index as :attr:`index`.  Views are live: they reflect later
    imputations on the underlying relation.
    """

    __slots__ = ("_relation", "_index")

    def __init__(self, relation: "Relation", index: int) -> None:
        self._relation = relation
        self._index = index

    @property
    def index(self) -> int:
        """Position of this tuple in the relation."""
        return self._index

    @property
    def relation(self) -> "Relation":
        """The relation this view reads from."""
        return self._relation

    def __getitem__(self, name: str) -> Any:
        return self._relation.value(self._index, name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._relation.attribute_names)

    def __len__(self) -> int:
        return self._relation.n_attributes

    def values_tuple(self) -> tuple[Any, ...]:
        """All cell values of this tuple, in schema order."""
        return tuple(
            self._relation.value(self._index, name)
            for name in self._relation.attribute_names
        )

    def missing_attributes(self) -> tuple[str, ...]:
        """Names of attributes on which this tuple is missing."""
        return tuple(
            name for name in self._relation.attribute_names
            if is_missing(self[name])
        )

    def is_incomplete(self) -> bool:
        """Whether the tuple has at least one missing value."""
        return any(is_missing(self[name]) for name in self)

    def __repr__(self) -> str:
        cells = ", ".join(f"{name}={self[name]!r}" for name in self)
        return f"RowView({self._index}: {cells})"


class Relation:
    """A typed relational instance with explicit missing values.

    Construct via :meth:`from_rows`, :meth:`from_columns` or
    :func:`repro.dataset.csv_io.read_csv`.
    """

    def __init__(
        self,
        attributes: Sequence[Attribute],
        columns: Mapping[str, Sequence[Any]],
        *,
        name: str = "relation",
        coerce: bool = True,
    ) -> None:
        if not attributes:
            raise SchemaError("a relation needs at least one attribute")
        names = [attr.name for attr in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        missing_cols = [n for n in names if n not in columns]
        if missing_cols:
            raise SchemaError(f"no column data for attributes {missing_cols}")
        lengths = {len(columns[n]) for n in names}
        if len(lengths) > 1:
            raise DataError(f"ragged columns: lengths {sorted(lengths)}")

        self.name = name
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        self._index: dict[str, int] = {n: i for i, n in enumerate(names)}
        self._columns: dict[str, list[Any]] = {}
        for attr in self._attributes:
            raw = columns[attr.name]
            if coerce:
                col = [coerce_value(normalize_missing(v), attr.type)
                       for v in raw]
            else:
                col = [normalize_missing(v) for v in raw]
            self._columns[attr.name] = col
        self._version = 0
        self._listeners: list[Callable[[int, str, Any], None]] = []

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[Attribute | str],
        rows: Iterable[Sequence[Any]],
        *,
        name: str = "relation",
        infer: bool = True,
    ) -> "Relation":
        """Build a relation from row tuples.

        ``attributes`` may mix :class:`Attribute` objects and bare names;
        bare names get their type inferred from the data when ``infer`` is
        true, else default to string.
        """
        rows = [list(row) for row in rows]
        width = len(attributes)
        for position, row in enumerate(rows):
            if len(row) != width:
                raise DataError(
                    f"row {position} has {len(row)} values, expected {width}"
                )
        resolved: list[Attribute] = []
        for position, attr in enumerate(attributes):
            if isinstance(attr, Attribute):
                resolved.append(attr)
                continue
            if infer:
                column = (row[position] for row in rows)
                resolved.append(Attribute(attr, infer_type(column)))
            else:
                resolved.append(Attribute(attr, AttributeType.STRING))
        columns = {
            attr.name: [row[position] for row in rows]
            for position, attr in enumerate(resolved)
        }
        return cls(resolved, columns, name=name)

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, Sequence[Any]],
        *,
        types: Mapping[str, AttributeType] | None = None,
        name: str = "relation",
    ) -> "Relation":
        """Build a relation from named columns, inferring missing types."""
        types = dict(types or {})
        attributes = [
            Attribute(col, types.get(col) or infer_type(values))
            for col, values in columns.items()
        ]
        return cls(attributes, columns, name=name)

    # ------------------------------------------------------------------
    # Schema access
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The schema, in declaration order."""
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(attr.name for attr in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; have {list(self._index)}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        """Whether ``name`` is part of the schema."""
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of attribute ``name`` in the schema."""
        self.attribute(name)  # raises SchemaError on unknown names
        return self._index[name]

    # ------------------------------------------------------------------
    # Size and versioning
    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        """Number of tuples (the paper's *n*)."""
        return len(self._columns[self._attributes[0].name])

    @property
    def n_attributes(self) -> int:
        """Number of attributes (the paper's *m*)."""
        return len(self._attributes)

    def __len__(self) -> int:
        return self.n_tuples

    @property
    def version(self) -> int:
        """Counter bumped by every :meth:`set_value`; lets caches detect
        staleness after imputations."""
        return self._version

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------
    def value(self, row: int, name: str) -> Any:
        """The value of tuple ``row`` on attribute ``name`` (``t[A]``)."""
        self._check_row(row)
        try:
            return self._columns[name][row]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def set_value(self, row: int, name: str, value: Any) -> None:
        """Write a cell, coercing ``value`` to the attribute type.

        This is the single mutation point of a relation; imputers call it
        to fill (or re-blank) cells.

        Mutation listeners cannot corrupt the write: the cell is stored
        and the version bumped first, then *every* registered listener
        runs (so cache invalidation hooks fire even when an earlier
        listener raises), and only afterwards is the first listener
        failure surfaced, wrapped in :class:`~repro.exceptions.DataError`.
        """
        attr = self.attribute(name)
        self._check_row(row)
        self._columns[name][row] = coerce_value(
            normalize_missing(value), attr.type
        )
        self._version += 1
        if not self._listeners:
            return
        stored = self._columns[name][row]
        errors: list[Exception] = []
        for listener in tuple(self._listeners):
            try:
                listener(row, name, stored)
            except Exception as exc:  # noqa: BLE001 - isolate listeners
                errors.append(exc)
        if errors:
            others = (
                f" (+{len(errors) - 1} more listener failures)"
                if len(errors) > 1 else ""
            )
            raise DataError(
                f"mutation listener failed after writing cell "
                f"({row}, {name!r}): {errors[0]}{others}"
            ) from errors[0]

    def clear_value(self, row: int, name: str) -> None:
        """Blank a cell back to :data:`MISSING`."""
        self.set_value(row, name, MISSING)

    def add_mutation_listener(
        self, listener: Callable[[int, str, Any], None]
    ) -> None:
        """Register a dirty-cell hook fired after every :meth:`set_value`.

        Listeners receive ``(row, name, stored_value)`` with the value as
        stored post-coercion.  Caches that materialize column data (the
        donor-scan kernels) register here so tentative writes and
        rollbacks invalidate them.  Listeners are not carried over by
        :meth:`copy` and friends.
        """
        self._listeners.append(listener)

    def remove_mutation_listener(
        self, listener: Callable[[int, str, Any], None]
    ) -> None:
        """Unregister a previously added dirty-cell hook."""
        self._listeners.remove(listener)

    def is_missing_cell(self, row: int, name: str) -> bool:
        """Whether ``t[A] = _`` for the given cell."""
        return is_missing(self.value(row, name))

    def column(self, name: str) -> tuple[Any, ...]:
        """An immutable snapshot of one column."""
        self.attribute(name)
        return tuple(self._columns[name])

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> RowView:
        """A live view of one tuple."""
        self._check_row(index)
        return RowView(self, index)

    def rows(self) -> Iterator[RowView]:
        """Iterate over live views of all tuples."""
        for index in range(self.n_tuples):
            yield RowView(self, index)

    def row_values(self, index: int) -> tuple[Any, ...]:
        """The raw cell values of one tuple, in schema order."""
        self._check_row(index)
        return tuple(self._columns[a.name][index] for a in self._attributes)

    # ------------------------------------------------------------------
    # Missing-value helpers
    # ------------------------------------------------------------------
    def missing_cells(self) -> list[tuple[int, str]]:
        """All ``(row, attribute)`` coordinates holding a missing value."""
        cells: list[tuple[int, str]] = []
        for attr in self._attributes:
            column = self._columns[attr.name]
            for row, value in enumerate(column):
                if is_missing(value):
                    cells.append((row, attr.name))
        cells.sort()
        return cells

    def incomplete_rows(self) -> list[int]:
        """Indices of tuples with at least one missing value (``r-hat``)."""
        incomplete: set[int] = set()
        for attr in self._attributes:
            column = self._columns[attr.name]
            for row, value in enumerate(column):
                if is_missing(value):
                    incomplete.add(row)
        return sorted(incomplete)

    def count_missing(self) -> int:
        """Total number of missing cells."""
        return sum(
            1
            for attr in self._attributes
            for value in self._columns[attr.name]
            if is_missing(value)
        )

    def completeness(self) -> float:
        """Fraction of non-missing cells, in [0, 1]."""
        total = self.n_tuples * self.n_attributes
        if total == 0:
            return 1.0
        return 1.0 - self.count_missing() / total

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, *, name: str | None = None) -> "Relation":
        """A deep, independent copy of this relation."""
        columns = {
            attr.name: list(self._columns[attr.name])
            for attr in self._attributes
        }
        return Relation(
            self._attributes,
            columns,
            name=name or self.name,
            coerce=False,
        )

    def project(self, names: Sequence[str], *,
                name: str | None = None) -> "Relation":
        """A copy restricted to the given attributes (``Pi_X(r)``)."""
        attributes = [self.attribute(n) for n in names]
        columns = {n: list(self._columns[n]) for n in names}
        return Relation(
            attributes,
            columns,
            name=name or f"{self.name}[{','.join(names)}]",
            coerce=False,
        )

    def take(self, rows: Sequence[int], *,
             name: str | None = None) -> "Relation":
        """A copy containing only the given tuples, in the given order."""
        for row in rows:
            self._check_row(row)
        columns = {
            attr.name: [self._columns[attr.name][row] for row in rows]
            for attr in self._attributes
        }
        return Relation(
            self._attributes,
            columns,
            name=name or f"{self.name}[{len(rows)} rows]",
            coerce=False,
        )

    def head(self, count: int, *, name: str | None = None) -> "Relation":
        """A copy of the first ``count`` tuples."""
        count = max(0, min(count, self.n_tuples))
        return self.take(list(range(count)), name=name)

    # ------------------------------------------------------------------
    # Comparison / display
    # ------------------------------------------------------------------
    def equals(self, other: "Relation") -> bool:
        """Structural equality: same schema, same cells (missing included)."""
        if self._attributes != other._attributes:
            return False
        if self.n_tuples != other.n_tuples:
            return False
        return all(
            self._columns[a.name] == other._columns[a.name]
            for a in self._attributes
        )

    def diff_cells(self, other: "Relation") -> list[tuple[int, str]]:
        """Coordinates where this relation differs from ``other``.

        Both relations must share the schema and tuple count; used by the
        evaluation harness to locate imputed cells.
        """
        if self._attributes != other._attributes:
            raise SchemaError("diff_cells requires identical schemas")
        if self.n_tuples != other.n_tuples:
            raise DataError("diff_cells requires identical tuple counts")
        diffs: list[tuple[int, str]] = []
        for attr in self._attributes:
            mine = self._columns[attr.name]
            theirs = other._columns[attr.name]
            for row in range(self.n_tuples):
                if mine[row] != theirs[row]:
                    diffs.append((row, attr.name))
        diffs.sort()
        return diffs

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {self.n_tuples} tuples x "
            f"{self.n_attributes} attributes)"
        )

    def to_text(self, limit: int = 10) -> str:
        """A small fixed-width rendering for debugging and examples."""
        names = list(self.attribute_names)
        shown = min(limit, self.n_tuples)
        rows = [[_render(self.value(r, n)) for n in names]
                for r in range(shown)]
        widths = [
            max(len(names[i]), *(len(row[i]) for row in rows), 1)
            if rows else len(names[i])
            for i in range(len(names))
        ]
        lines = [
            "  ".join(names[i].ljust(widths[i]) for i in range(len(names)))
        ]
        for row in rows:
            lines.append(
                "  ".join(row[i].ljust(widths[i]) for i in range(len(names)))
            )
        if shown < self.n_tuples:
            lines.append(f"... ({self.n_tuples - shown} more tuples)")
        return "\n".join(lines)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_tuples:
            raise DataError(
                f"row {row} out of range for {self.n_tuples} tuples"
            )


def _render(value: Any) -> str:
    if is_missing(value):
        return "_"
    return str(value)
